package sim

import (
	"math"
	"testing"
	"testing/quick"
)

// approx reports whether a is within rel of b.
func approx(a, b, rel float64) bool {
	if b == 0 {
		return math.Abs(a) < rel
	}
	return math.Abs(a-b)/math.Abs(b) < rel
}

func TestFluidSingleFlow(t *testing.T) {
	e := NewEngine()
	f := NewFluid(e, "bus", 1e9) // 1 GB/s
	var end Time
	e.Spawn("xfer", func(p *Proc) {
		f.Consume(p, 1e6) // 1 MB
		end = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !approx(end.Seconds(), 1e-3, 1e-6) {
		t.Fatalf("1MB at 1GB/s took %v, want ~1ms", end)
	}
}

func TestFluidFairSharing(t *testing.T) {
	// Two equal flows started together each get half the capacity and
	// finish together in twice the solo time.
	e := NewEngine()
	f := NewFluid(e, "bus", 1e9)
	var ends [2]Time
	for i := 0; i < 2; i++ {
		i := i
		e.Spawn("xfer", func(p *Proc) {
			f.Consume(p, 1e6)
			ends[i] = p.Now()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, end := range ends {
		if !approx(end.Seconds(), 2e-3, 1e-6) {
			t.Fatalf("flow %d finished at %v, want ~2ms", i, end)
		}
	}
}

func TestFluidLateArrival(t *testing.T) {
	// Flow A (2 MB) runs alone for 1 ms (finishing 1 MB), then B (1 MB)
	// joins. They share: A's second MB and B's MB take 2 ms each of
	// half-rate service, so both finish at t=3ms.
	e := NewEngine()
	f := NewFluid(e, "bus", 1e9)
	var endA, endB Time
	e.Spawn("a", func(p *Proc) {
		f.Consume(p, 2e6)
		endA = p.Now()
	})
	e.Spawn("b", func(p *Proc) {
		p.Sleep(Millisecond)
		f.Consume(p, 1e6)
		endB = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !approx(endA.Seconds(), 3e-3, 1e-5) {
		t.Fatalf("A finished at %v, want ~3ms", endA)
	}
	if !approx(endB.Seconds(), 3e-3, 1e-5) {
		t.Fatalf("B finished at %v, want ~3ms", endB)
	}
}

func TestFluidZeroAmount(t *testing.T) {
	e := NewEngine()
	f := NewFluid(e, "bus", 1e9)
	done := false
	e.Spawn("p", func(p *Proc) {
		f.Consume(p, 0)
		done = true
		if p.Now() != 0 {
			t.Errorf("zero-amount flow advanced time to %v", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("zero flow never completed")
	}
}

// Property: total service time for N equal concurrent flows equals
// N*amount/capacity (work conservation), regardless of N and amount.
func TestFluidWorkConservationProperty(t *testing.T) {
	prop := func(nRaw uint8, amtRaw uint32) bool {
		n := int(nRaw%8) + 1
		amount := float64(amtRaw%1_000_000) + 1000
		e := NewEngine()
		f := NewFluid(e, "bus", 8e9)
		var last Time
		for i := 0; i < n; i++ {
			e.Spawn("p", func(p *Proc) {
				f.Consume(p, amount)
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		want := float64(n) * amount / 8e9
		return approx(last.Seconds(), want, 1e-4)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: staggered arrivals never violate conservation: the makespan of
// any set of flows is at least total/capacity and at most
// latestArrival + total/capacity.
func TestFluidMakespanBoundsProperty(t *testing.T) {
	prop := func(arrivalsRaw [4]uint16, amountsRaw [4]uint16) bool {
		e := NewEngine()
		f := NewFluid(e, "bus", 1e9)
		var last Time
		var total float64
		var latest Time
		for i := 0; i < 4; i++ {
			arrive := Time(arrivalsRaw[i]) * Microsecond
			amount := float64(amountsRaw[i]) + 1
			total += amount
			if arrive > latest {
				latest = arrive
			}
			e.Spawn("p", func(p *Proc) {
				p.Sleep(arrive)
				f.Consume(p, amount)
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		lower := total / 1e9
		upper := latest.Seconds() + total/1e9
		got := last.Seconds()
		return got >= lower*(1-1e-6) && got <= upper*(1+1e-6)+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFluidServedAccounting(t *testing.T) {
	e := NewEngine()
	f := NewFluid(e, "bus", 1e9)
	for i := 0; i < 3; i++ {
		e.Spawn("p", func(p *Proc) { f.Consume(p, 1000) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !approx(f.Served, 3000, 1e-9) {
		t.Fatalf("Served = %v, want 3000", f.Served)
	}
}
