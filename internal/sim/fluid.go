package sim

import "fmt"

// Fluid models a capacity shared max-min fairly among concurrent flows
// (processor sharing). It is used for the memory bus (capacity in bytes per
// second shared by all in-flight transfers) and for CPU cores (capacity of
// one CPU-second per second shared by runnable contexts, which is how a
// kernel thread competing with a user process halves both their speeds).
//
// A flow with amount A completes after A/rate seconds where rate is the
// flow's time-varying fair share. Completions are recomputed whenever the
// flow set changes.
type Fluid struct {
	eng        *Engine
	name       string
	parkReason string  // precomputed "fluid <name>", shared by all waiters
	capacity   float64 // units per second
	flows      []*Flow
	last       Time   // time of last remaining-work update
	gen        uint64 // invalidates stale completion events

	// Served accumulates the total units completed (for utilization stats).
	Served float64
}

// Flow is one in-flight demand on a Fluid. Create flows with Fluid.Start.
type Flow struct {
	fluid     *Fluid
	remaining float64
	done      bool
	waiters   []*Proc
	amount    float64
}

// NewFluid returns a fluid resource with the given capacity in units/second.
func NewFluid(e *Engine, name string, capacity float64) *Fluid {
	if capacity <= 0 {
		panic("sim: fluid capacity must be positive")
	}
	return &Fluid{eng: e, name: name, parkReason: "fluid " + name, capacity: capacity}
}

// Capacity returns the configured capacity in units per second.
func (f *Fluid) Capacity() float64 { return f.capacity }

// SetCapacity changes the capacity mid-run (a perturbed core or degraded
// link). Elapsed service is charged at the old rate first, then in-flight
// flows are rescheduled at the new one.
func (f *Fluid) SetCapacity(c float64) {
	if c <= 0 {
		panic("sim: fluid capacity must be positive")
	}
	f.update()
	f.capacity = c
	f.reschedule()
}

// Active reports the number of in-flight flows.
func (f *Fluid) Active() int { return len(f.flows) }

// epsilon below which a flow counts as complete: less than 0.01 ps of
// service at full capacity. Completion times are rounded up by 1 ps, so
// remaining work at the completion event is always under this bound.
func (f *Fluid) epsilon() float64 { return f.capacity * 1e-14 }

// Start begins a flow of the given amount and returns a handle to wait on.
// A non-positive amount completes immediately.
func (f *Fluid) Start(amount float64) *Flow {
	fl := &Flow{fluid: f, remaining: amount, amount: amount}
	if amount <= f.epsilon() {
		fl.done = true
		f.Served += amount
		return fl
	}
	f.update()
	f.flows = append(f.flows, fl)
	f.reschedule()
	return fl
}

// Consume runs a flow of the given amount to completion, blocking p.
func (f *Fluid) Consume(p *Proc, amount float64) {
	f.Start(amount).Wait(p)
}

// Wait blocks p until the flow completes. Multiple processes may wait on the
// same flow. Fluids are shared (machine-domain) state: a lane-homed process
// must Exit before waiting.
func (fl *Flow) Wait(p *Proc) {
	p.requireMachine("Flow.Wait")
	for !fl.done {
		fl.waiters = append(fl.waiters, p)
		p.park(fl.fluid.parkReason)
	}
}

// Done reports whether the flow has completed.
func (fl *Flow) Done() bool { return fl.done }

// update charges elapsed service time against all active flows and retires
// the ones that finished.
func (f *Fluid) update() {
	now := f.eng.now
	if now > f.last && len(f.flows) > 0 {
		dec := (f.capacity / float64(len(f.flows))) * (now - f.last).Seconds()
		for _, fl := range f.flows {
			fl.remaining -= dec
		}
	}
	f.last = now
	eps := f.epsilon()
	live := f.flows[:0]
	for _, fl := range f.flows {
		if fl.remaining <= eps {
			fl.done = true
			f.Served += fl.amount
			for _, w := range fl.waiters {
				f.eng.Schedule(now, w.wakeFn)
			}
			fl.waiters = nil
		} else {
			live = append(live, fl)
		}
	}
	// Zero the tail so retired flows are not pinned by the backing array.
	for i := len(live); i < len(f.flows); i++ {
		f.flows[i] = nil
	}
	f.flows = live
}

// reschedule places a completion event at the earliest flow finish time.
// The generation counter cancels previously scheduled events.
func (f *Fluid) reschedule() {
	f.gen++
	if len(f.flows) == 0 {
		return
	}
	minRem := f.flows[0].remaining
	for _, fl := range f.flows[1:] {
		if fl.remaining < minRem {
			minRem = fl.remaining
		}
	}
	rate := f.capacity / float64(len(f.flows))
	dt := FromSeconds(minRem/rate) + 1 // round up so the flow really finishes
	gen := f.gen
	f.eng.Schedule(f.eng.now+dt, func() {
		if gen != f.gen {
			return // superseded by a later flow-set change
		}
		f.update()
		f.reschedule()
	})
}

// String describes the fluid for diagnostics.
func (f *Fluid) String() string {
	return fmt.Sprintf("fluid %s cap=%.3g active=%d", f.name, f.capacity, len(f.flows))
}
