package sim

import (
	"fmt"
	"testing"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(10*Nanosecond, func() { got = append(got, 2) })
	e.Schedule(5*Nanosecond, func() { got = append(got, 1) })
	e.Schedule(10*Nanosecond, func() { got = append(got, 3) }) // same time: FIFO
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 10*Nanosecond {
		t.Fatalf("final time = %v, want 10ns", e.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10*Nanosecond, func() {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past should panic")
		}
	}()
	e.Schedule(5*Nanosecond, func() {})
}

func TestProcSleep(t *testing.T) {
	e := NewEngine()
	var wake Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(3 * Microsecond)
		wake = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if wake != 3*Microsecond {
		t.Fatalf("woke at %v, want 3us", wake)
	}
}

func TestTwoProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var log []string
		mk := func(name string, step Time) {
			e.Spawn(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					p.Sleep(step)
					log = append(log, fmt.Sprintf("%s@%v", name, p.Now()))
				}
			})
		}
		mk("a", 2*Nanosecond)
		mk("b", 3*Nanosecond)
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	first := run()
	for i := 0; i < 5; i++ {
		again := run()
		if len(again) != len(first) {
			t.Fatalf("nondeterministic length: %d vs %d", len(again), len(first))
		}
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("nondeterministic at %d: %q vs %q", j, first[j], again[j])
			}
		}
	}
	// At t=6 both wake; b's wake event was scheduled at t=3, a's at t=4,
	// so b fires first (same-time events fire in scheduling order).
	want := []string{"a@2.000ns", "b@3.000ns", "a@4.000ns", "b@6.000ns", "a@6.000ns", "b@9.000ns"}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("log[%d] = %q, want %q (full: %v)", i, first[i], want[i], first)
		}
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine()
	c := NewCond(e, "never")
	e.Spawn("stuck", func(p *Proc) { c.Wait(p) })
	err := e.Run()
	if err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(1*Second, func() { fired++ })
	e.Schedule(3*Second, func() { fired++ })
	if err := e.RunUntil(2 * Second); err != nil && fired != 1 {
		// A live process count of zero with pending events is fine here.
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if e.Now() != 2*Second {
		t.Fatalf("now = %v, want 2s", e.Now())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

func TestCondSignalBroadcast(t *testing.T) {
	e := NewEngine()
	c := NewCond(e, "c")
	var woke []string
	ready := 0
	for _, name := range []string{"w1", "w2", "w3"} {
		name := name
		e.Spawn(name, func(p *Proc) {
			ready++
			c.Wait(p)
			woke = append(woke, name)
		})
	}
	e.Spawn("signaler", func(p *Proc) {
		p.Sleep(1 * Nanosecond)
		c.Signal()
		p.Sleep(1 * Nanosecond)
		c.Broadcast()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(woke) != 3 || woke[0] != "w1" {
		t.Fatalf("woke = %v, want w1 first then all", woke)
	}
}

func TestMailboxFIFO(t *testing.T) {
	e := NewEngine()
	m := NewMailbox[int](e, "m")
	var got []int
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, m.Get(p))
		}
	})
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(1 * Nanosecond)
			m.Put(i)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got %v, want 0..4 in order", got)
		}
	}
}

func TestResourceMutualExclusion(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "dev", 1)
	inside := 0
	maxInside := 0
	for i := 0; i < 4; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			r.Acquire(p)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Sleep(10 * Nanosecond)
			inside--
			r.Release()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInside != 1 {
		t.Fatalf("max concurrent holders = %d, want 1", maxInside)
	}
	if e.Now() != 40*Nanosecond {
		t.Fatalf("serialized total = %v, want 40ns", e.Now())
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{1500 * Picosecond, "1.500ns"},
		{2 * Microsecond, "2.000us"},
		{3 * Millisecond, "3.000ms"},
		{Second + Millisecond, "1.001s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}
