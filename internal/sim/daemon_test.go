package sim

import "testing"

func TestDaemonDoesNotDeadlock(t *testing.T) {
	// A daemon blocked forever must not trip deadlock detection.
	e := NewEngine()
	m := NewMailbox[int](e, "jobs")
	served := 0
	e.SpawnDaemon("server", func(p *Proc) {
		for {
			m.Get(p)
			served++
		}
	})
	e.Spawn("client", func(p *Proc) {
		m.Put(1)
		m.Put(2)
		p.Sleep(Microsecond)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if served != 2 {
		t.Fatalf("served = %d, want 2", served)
	}
}

func TestNonDaemonStillDeadlocks(t *testing.T) {
	e := NewEngine()
	m := NewMailbox[int](e, "never")
	e.Spawn("stuck", func(p *Proc) { m.Get(p) })
	if err := e.Run(); err == nil {
		t.Fatal("expected deadlock error for blocked non-daemon")
	}
}

func TestSpawnAtFuture(t *testing.T) {
	e := NewEngine()
	var started Time
	e.SpawnAt(5*Microsecond, "late", func(p *Proc) { started = p.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if started != 5*Microsecond {
		t.Fatalf("started at %v, want 5us", started)
	}
}

func TestFailStopsRun(t *testing.T) {
	e := NewEngine()
	e.Spawn("failer", func(p *Proc) {
		p.Sleep(Nanosecond)
		e.Fail(errSentinel)
	})
	e.Spawn("other", func(p *Proc) { p.Sleep(Second) })
	err := e.Run()
	if err != errSentinel {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if e.Now() >= Second {
		t.Fatal("engine ran past the failure")
	}
}

type sentinelError struct{}

func (sentinelError) Error() string { return "sentinel" }

var errSentinel = sentinelError{}

func TestYieldRunsBehindSameTimeEvents(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Spawn("yielder", func(p *Proc) {
		e.Schedule(e.Now(), func() { order = append(order, "event") })
		p.Yield()
		order = append(order, "proc")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "event" || order[1] != "proc" {
		t.Fatalf("order = %v", order)
	}
}

func TestMailboxTryGet(t *testing.T) {
	e := NewEngine()
	m := NewMailbox[string](e, "t")
	if _, ok := m.TryGet(); ok {
		t.Fatal("TryGet on empty mailbox succeeded")
	}
	m.Put("x")
	if v, ok := m.TryGet(); !ok || v != "x" {
		t.Fatalf("TryGet = (%q,%v)", v, ok)
	}
	if m.Len() != 0 {
		t.Fatal("mailbox not empty")
	}
}
