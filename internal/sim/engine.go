package sim

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
)

// event is a scheduled callback. Events with equal time fire in the order
// they were scheduled (seq breaks ties), which makes runs deterministic.
// dom is the event's domain: 0 is the machine domain (shared bus, caches,
// coherence, kernel state), positive values name per-rank/pair lanes
// created with NewDomain.
type event struct {
	at  Time
	seq uint64
	dom int32
	fn  func()
}

// before orders events by (at, seq); seqs are globally unique so this is a
// total order — the execution order of the serial engine, and the order the
// parallel engine's commits reproduce.
func (a event) before(b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// eventQueue is a binary min-heap of events ordered by (at, seq). Events are
// stored by value: scheduling does not heap-allocate per event (the engine's
// hottest allocation site), and popped slots are zeroed so completed
// callbacks are not pinned by the backing array.
//
// Backing arrays come from a package-wide pool (heapPool): with per-domain
// lane sharding an engine owns one heap per lane, and experiments create
// thousands of short-lived engines, so lanes re-use pooled arrays instead of
// each growing its own from scratch (see BenchmarkLaneHeapSteadyState).
type eventQueue []event

var heapPool = sync.Pool{New: func() any {
	s := make([]event, 0, initialEventCap)
	return &s
}}

// release returns the heap's backing array to the pool. Only legal when the
// heap is empty (terminal engine state); the queue is reset to nil and
// re-acquires lazily on the next push.
func (q *eventQueue) release() {
	if cap(*q) == 0 || len(*q) != 0 {
		return
	}
	s := []event((*q)[:0])
	heapPool.Put(&s)
	*q = nil
}

func (q eventQueue) before(i, j int) bool { return q[i].before(q[j]) }

func (q *eventQueue) push(ev event) {
	h := *q
	if h == nil {
		h = *(heapPool.Get().(*[]event))
	}
	if len(h) == cap(h) {
		// Grow by doubling and hand the outgrown backing array back to
		// the pool for another lane instead of leaking it to the GC.
		grown := make([]event, len(h), 2*cap(h))
		copy(grown, h)
		old := []event(h[:0])
		heapPool.Put(&old)
		h = grown
	}
	h = append(h, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.before(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	*q = h
}

func (q *eventQueue) pop() event {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{}
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && h.before(l, min) {
			min = l
		}
		if r < n && h.before(r, min) {
			min = r
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	*q = h
	return top
}

// initialEventCap pre-sizes the event heap: a typical benchmark stack keeps
// well under this many events in flight, so steady state never grows it.
const initialEventCap = 256

// Domain identifies an event lane. Domain 0 is the machine domain: shared
// hardware state (bus bandwidth windows, caches, coherence directory, DMA)
// lives there and its events always execute serially in (at, seq) order.
// Positive domains are per-rank/pair lanes created with NewDomain whose
// events the parallel engine may execute concurrently under the
// conservative-lookahead barrier.
type Domain int32

// DomainMachine is the shared machine domain.
const DomainMachine Domain = 0

// simParEnv lets CI force the execution mode regardless of GOMAXPROCS:
// KNEMESIS_SIM_PAR=1 forces the parallel lane engine, =0 forces serial.
var simParEnv = func() int {
	switch os.Getenv("KNEMESIS_SIM_PAR") {
	case "1":
		return 1
	case "0":
		return 0
	}
	return -1
}()

// Engine is a discrete-event simulation executor.
//
// It runs in one of two modes. Serial mode — the differential reference,
// and the default on GOMAXPROCS=1 — pops every event from one heap in
// (at, seq) order, exactly the pre-lane engine. Parallel mode shards events
// into per-domain lanes executed concurrently under a conservative
// time-window barrier (see lane.go); it is the default when GOMAXPROCS>1
// and produces byte-identical results, gated by the differential tests.
//
// The zero value is not usable; create engines with NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	events eventQueue // machine-domain heap (all domains in serial mode)

	procs    []*Proc
	liveProc atomic.Int32 // processes that have started and not yet finished
	nextPID  int

	stopped atomic.Bool
	// terminating flags a Terminate unwind: parked processes woken during
	// it abandon execution (park panics procKilled) instead of resuming.
	terminating atomic.Bool
	failMu      sync.Mutex
	err         error

	// serial selects the reference single-heap execution path.
	serial bool
	// lookahead is the conservative horizon increment: the minimum modeled
	// cross-domain latency. A lane may run every event with at <= t0 +
	// lookahead (t0 = global minimum pending time) without cross-lane
	// coordination, and entering a lane costs lookahead of modeled time in
	// both modes (a scheduling-in latency), which is what makes running
	// ahead safe. See DESIGN.md, "Sharded event lanes".
	lookahead Time
	// lanes[i] hosts Domain(i+1).
	lanes []*lane
	// roundLanes is the reusable scratch list of lanes active in a round.
	roundLanes []*lane
	// roundActive trips the tripwire: machine-domain scheduling (conds,
	// fluids, Spawn) during a parallel lane round means a lane-homed
	// process used a shared-state primitive it must not touch.
	roundActive atomic.Bool
	// trace, when set, observes every executed event. Serial mode calls it
	// in execution order (= (at, seq) order); parallel mode calls it in
	// (at, seq) order within each lane round and machine stretch. Sorting
	// by (at, seq) yields the identical canonical order in both modes —
	// the differential tests' event-ordering gate.
	trace func(at Time, seq uint64, dom Domain)
}

// NewEngine returns an empty engine at simulated time zero. The execution
// mode defaults to serial on GOMAXPROCS=1 and parallel otherwise
// (KNEMESIS_SIM_PAR=0|1 overrides); SetSerial changes it between runs.
func NewEngine() *Engine {
	e := &Engine{events: *(heapPool.Get().(*[]event))}
	switch simParEnv {
	case 1:
		e.serial = false
	case 0:
		e.serial = true
	default:
		e.serial = runtime.GOMAXPROCS(0) == 1
	}
	return e
}

// Now returns the current simulated time. From a lane-homed process use
// Proc.Now, which reads the lane-local clock.
func (e *Engine) Now() Time { return e.now }

// Serial reports whether the engine is in serial (reference) mode.
func (e *Engine) Serial() bool { return e.serial }

// SetSerial selects the execution mode. Flipping it mid-run (between
// RunUntil segments) migrates pending events between the single reference
// heap and the per-domain lane heaps; events keep their (at, seq), so the
// execution order — and every simulation result — is unchanged.
func (e *Engine) SetSerial(serial bool) {
	if serial == e.serial {
		return
	}
	e.serial = serial
	if serial {
		// Merge every lane heap into the reference heap.
		for _, ln := range e.lanes {
			for len(ln.events) > 0 {
				e.events.push(ln.events.pop())
			}
			ln.events.release()
		}
		return
	}
	// Distribute the reference heap onto the lanes.
	var machine eventQueue
	for len(e.events) > 0 {
		ev := e.events.pop()
		if ev.dom == 0 {
			machine.push(ev)
		} else {
			e.lanes[ev.dom-1].events.push(ev)
		}
	}
	e.events.release()
	e.events = machine
	for _, ln := range e.lanes {
		ln.now, ln.frontier = e.now, e.now
	}
}

// NewDomain registers a new event lane (a simulated rank, pair or node) and
// returns its domain. Must be called from machine context (setup or a
// machine-domain event), not from inside a lane.
func (e *Engine) NewDomain(name string) Domain {
	if e.roundActive.Load() {
		panic("sim: NewDomain during a parallel lane round")
	}
	ln := &lane{dom: Domain(len(e.lanes) + 1), name: name, eng: e, now: e.now, frontier: e.now}
	e.lanes = append(e.lanes, ln)
	return ln.dom
}

// SetLookahead declares the minimum modeled cross-domain latency: no domain
// may affect another sooner than this. It bounds how far a lane may run
// ahead of the global clock without coordination, and is charged as the
// modeled latency of entering a lane (Proc.Enter) in both modes.
func (e *Engine) SetLookahead(d Time) {
	if d < 0 {
		panic("sim: negative lookahead")
	}
	e.lookahead = d
}

// Lookahead returns the declared minimum cross-domain latency.
func (e *Engine) Lookahead() Time { return e.lookahead }

// SetTrace installs an observer called for every executed event with its
// timestamp, sequence number and domain. Sorting the records by (at, seq)
// yields a canonical execution order that is identical across modes; the
// differential tests compare exactly that.
func (e *Engine) SetTrace(fn func(at Time, seq uint64, dom Domain)) { e.trace = fn }

// Schedule registers fn to run at absolute simulated time at on the machine
// domain. Scheduling in the past panics: it would violate causality.
func (e *Engine) Schedule(at Time, fn func()) { e.ScheduleDomain(DomainMachine, at, fn) }

// ScheduleDomain registers fn to run at absolute time at on domain d. It
// must be called from machine context; lane-homed processes schedule
// through their Proc (Sleep/Yield/Exit), which routes via the lane outbox.
// Scheduling onto a lane below its frontier panics: the lane has already
// run past that time under the lookahead guarantee.
func (e *Engine) ScheduleDomain(d Domain, at Time, fn func()) {
	if e.roundActive.Load() {
		panic("sim: machine-context Schedule during a parallel lane round " +
			"(a lane-homed process may only Sleep, Yield or Exit)")
	}
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	if d < 0 || int(d) > len(e.lanes) {
		panic(fmt.Sprintf("sim: schedule on unknown domain %d", d))
	}
	e.seq++
	ev := event{at: at, seq: e.seq, dom: int32(d), fn: fn}
	if e.serial || d == DomainMachine {
		e.events.push(ev)
		return
	}
	ln := e.lanes[d-1]
	if at < ln.frontier {
		panic(fmt.Sprintf("sim: scheduling event at %v on lane %s behind its frontier %v "+
			"(cross-domain delay below the declared lookahead %v)", at, ln.name, ln.frontier, e.lookahead))
	}
	ln.events.push(ev)
}

// After registers fn to run d after the current simulated time (machine
// domain).
func (e *Engine) After(d Time, fn func()) { e.Schedule(e.now+d, fn) }

// Stop makes Run return after the currently executing event (or lane round)
// completes. Safe to call from another goroutine (a cancellation watcher);
// note RunUntil clears the flag on entry, so a watcher racing a run start
// must re-assert until the run actually returns.
func (e *Engine) Stop() { e.stopped.Store(true) }

// LiveProcs reports the number of non-daemon processes that have been
// spawned and not yet finished. Injected background daemons consult it to
// stop rescheduling once the application is done, so perturbed runs drain.
func (e *Engine) LiveProcs() int { return int(e.liveProc.Load()) }

// procKilled is the sentinel panic that unwinds a parked process during
// Terminate; the spawn wrapper recovers exactly this type.
type procKilled struct{}

// Terminate force-unwinds every process that has not finished: each parked
// goroutine is woken once, abandons its work by panicking procKilled out of
// park (running deferred cleanup on the way), and is reaped. Call it only
// after Run/RunUntil has returned (every live process is then parked at its
// resume handshake); afterwards the engine cannot run again.
func (e *Engine) Terminate() {
	e.stopped.Store(true)
	e.terminating.Store(true)
	for _, p := range e.procs {
		for !p.done {
			p.resume <- struct{}{}
			<-p.yield
		}
	}
	e.terminating.Store(false)
}

// StateDump renders the engine's process table for watchdog diagnostics:
// the clock, live/pending counts, and every unfinished process with its
// park reason. Call it from the goroutine that ran the engine, after
// Run/RunUntil has returned.
func (e *Engine) StateDump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sim engine: now=%v live=%d daemons+procs=%d pending events=%d\n",
		e.now, e.liveProc.Load(), len(e.procs), e.pendingEvents())
	for _, p := range e.procs {
		if p.done {
			continue
		}
		state := "not started"
		if p.started {
			state = fmt.Sprintf("blocked on %q", p.blockedOn)
		}
		kind := ""
		if p.daemon {
			kind = " daemon"
		}
		fmt.Fprintf(&b, "  proc %d %s%s: %s\n", p.pid, p.name, kind, state)
	}
	return b.String()
}

// Fail records err and stops the engine. Used by processes to abort a
// simulation from inside.
func (e *Engine) Fail(err error) {
	e.failMu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.failMu.Unlock()
	e.Stop()
}

// Run executes events until every queue is empty, Stop is called, or an
// error is recorded. If the queues drain while processes are still blocked,
// Run returns a deadlock error naming the blocked processes.
func (e *Engine) Run() error {
	return e.RunUntil(-1)
}

// RunUntil executes events with timestamps <= limit (limit < 0 means no
// bound). The simulated clock is left at the last executed event (or at
// limit when the limit cut execution short).
func (e *Engine) RunUntil(limit Time) error {
	e.stopped.Store(false)
	if e.serial {
		return e.runSerial(limit)
	}
	return e.runParallel(limit)
}

// runSerial is the reference execution path: one heap, strict (at, seq)
// order — byte-for-byte the pre-lane engine.
func (e *Engine) runSerial(limit Time) error {
	for !e.stopped.Load() && len(e.events) > 0 {
		if limit >= 0 && e.events[0].at > limit {
			e.now = limit
			return e.err
		}
		next := e.events.pop()
		e.now = next.at
		if e.trace != nil {
			e.trace(next.at, next.seq, Domain(next.dom))
		}
		next.fn()
	}
	return e.finish()
}

// finish is the shared run epilogue: error and deadlock reporting plus
// returning drained heap backings to the pool at terminal state.
func (e *Engine) finish() error {
	if e.err != nil {
		return e.err
	}
	if !e.stopped.Load() && e.liveProc.Load() > 0 {
		return fmt.Errorf("sim: deadlock at %v: %d process(es) blocked: %s",
			e.now, e.liveProc.Load(), e.blockedNames())
	}
	if !e.stopped.Load() && e.liveProc.Load() == 0 && e.pendingEvents() == 0 {
		e.events.release()
		for _, ln := range e.lanes {
			ln.events.release()
		}
	}
	return nil
}

// pendingEvents counts events across the machine heap and every lane.
func (e *Engine) pendingEvents() int {
	n := len(e.events)
	for _, ln := range e.lanes {
		n += len(ln.events)
	}
	return n
}

func (e *Engine) blockedNames() string {
	var names []string
	for _, p := range e.procs {
		if p.started && !p.done && !p.daemon {
			names = append(names, fmt.Sprintf("%s[%s]", p.name, p.blockedOn))
		}
	}
	return strings.Join(names, ", ")
}
