package sim

import (
	"fmt"
	"strings"
)

// event is a scheduled callback. Events with equal time fire in the order
// they were scheduled (seq breaks ties), which makes runs deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventQueue is a binary min-heap of events ordered by (at, seq). Events are
// stored by value: scheduling does not heap-allocate per event (the engine's
// hottest allocation site), and popped slots are zeroed so completed
// callbacks are not pinned by the backing array.
type eventQueue []event

func (q eventQueue) before(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q *eventQueue) push(ev event) {
	h := append(*q, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.before(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	*q = h
}

func (q *eventQueue) pop() event {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{}
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && h.before(l, min) {
			min = l
		}
		if r < n && h.before(r, min) {
			min = r
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	*q = h
	return top
}

// initialEventCap pre-sizes the event heap: a typical benchmark stack keeps
// well under this many events in flight, so steady state never grows it.
const initialEventCap = 256

// Engine is a discrete-event simulation executor.
//
// The zero value is not usable; create engines with NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	events eventQueue

	// yield is signalled by a process goroutine when it parks, returning
	// control to whoever woke it (the engine loop or another waker).
	yield chan struct{}

	procs    []*Proc
	liveProc int // processes that have started and not yet finished
	nextPID  int

	stopped bool
	err     error
}

// NewEngine returns an empty engine at simulated time zero.
func NewEngine() *Engine {
	return &Engine{
		yield:  make(chan struct{}),
		events: make(eventQueue, 0, initialEventCap),
	}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Schedule registers fn to run at absolute simulated time at.
// Scheduling in the past panics: it would violate causality.
func (e *Engine) Schedule(at Time, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	e.seq++
	e.events.push(event{at: at, seq: e.seq, fn: fn})
}

// After registers fn to run d after the current simulated time.
func (e *Engine) After(d Time, fn func()) { e.Schedule(e.now+d, fn) }

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Fail records err and stops the engine. Used by processes to abort a
// simulation from inside.
func (e *Engine) Fail(err error) {
	if e.err == nil {
		e.err = err
	}
	e.Stop()
}

// Run executes events until the event queue is empty, Stop is called, or an
// error is recorded. If the queue drains while processes are still blocked,
// Run returns a deadlock error naming the blocked processes.
func (e *Engine) Run() error {
	return e.RunUntil(-1)
}

// RunUntil executes events with timestamps <= limit (limit < 0 means no
// bound). The simulated clock is left at the last executed event (or at
// limit when the limit cut execution short).
func (e *Engine) RunUntil(limit Time) error {
	e.stopped = false
	for !e.stopped && len(e.events) > 0 {
		if limit >= 0 && e.events[0].at > limit {
			e.now = limit
			return e.err
		}
		next := e.events.pop()
		e.now = next.at
		next.fn()
	}
	if e.err != nil {
		return e.err
	}
	if !e.stopped && e.liveProc > 0 {
		return fmt.Errorf("sim: deadlock at %v: %d process(es) blocked: %s",
			e.now, e.liveProc, e.blockedNames())
	}
	return nil
}

func (e *Engine) blockedNames() string {
	var names []string
	for _, p := range e.procs {
		if p.started && !p.done && !p.daemon {
			names = append(names, fmt.Sprintf("%s[%s]", p.name, p.blockedOn))
		}
	}
	return strings.Join(names, ", ")
}
