package sim

// Cond is a simulated condition variable. Unlike sync.Cond there is no
// associated mutex: the simulation is sequential, so state changes between
// Wait and Signal cannot race. The usual pattern still applies — waiters
// must re-check their predicate in a loop, because another process may run
// between the signal and the wakeup.
type Cond struct {
	eng        *Engine
	waiters    []*Proc
	label      string
	parkReason string // precomputed "cond <label>", shared by all waiters
}

// NewCond returns a condition variable bound to engine e. The label appears
// in deadlock reports.
func NewCond(e *Engine, label string) *Cond {
	return &Cond{eng: e, label: label, parkReason: "cond " + label}
}

// Wait blocks p until Signal or Broadcast wakes it. Conditions are shared
// (machine-domain) state: a lane-homed process must Exit before waiting.
func (c *Cond) Wait(p *Proc) {
	p.requireMachine("Cond.Wait")
	c.waiters = append(c.waiters, p)
	p.park(c.parkReason)
}

// Signal wakes the longest-waiting process, if any. The wakeup is delivered
// as an event at the current time, preserving deterministic ordering.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	w := c.waiters[0]
	c.waiters = c.waiters[1:]
	c.eng.Schedule(c.eng.now, w.wakeFn)
}

// Broadcast wakes all waiting processes in FIFO order.
func (c *Cond) Broadcast() {
	for _, w := range c.waiters {
		c.eng.Schedule(c.eng.now, w.wakeFn)
	}
	c.waiters = c.waiters[:0]
}

// Waiters reports how many processes are blocked on c.
func (c *Cond) Waiters() int { return len(c.waiters) }

// Mailbox is an unbounded FIFO of items with blocking receive. It is the
// simulation analogue of a Go channel.
type Mailbox[T any] struct {
	items []T
	cond  *Cond
}

// NewMailbox returns an empty mailbox bound to engine e.
func NewMailbox[T any](e *Engine, label string) *Mailbox[T] {
	return &Mailbox[T]{cond: NewCond(e, "mailbox "+label)}
}

// Put appends an item and wakes one waiting receiver.
func (m *Mailbox[T]) Put(v T) {
	m.items = append(m.items, v)
	m.cond.Signal()
}

// Get blocks p until an item is available and returns it.
func (m *Mailbox[T]) Get(p *Proc) T {
	for len(m.items) == 0 {
		m.cond.Wait(p)
	}
	v := m.items[0]
	copy(m.items, m.items[1:])
	m.items = m.items[:len(m.items)-1]
	return v
}

// TryGet returns the next item without blocking.
func (m *Mailbox[T]) TryGet() (T, bool) {
	var zero T
	if len(m.items) == 0 {
		return zero, false
	}
	v := m.items[0]
	copy(m.items, m.items[1:])
	m.items = m.items[:len(m.items)-1]
	return v, true
}

// Len reports the number of queued items.
func (m *Mailbox[T]) Len() int { return len(m.items) }

// Resource is a counting semaphore with FIFO admission, used for exclusive
// or limited-concurrency devices (e.g. a pipe lock or an ioctl path).
type Resource struct {
	capacity int
	inUse    int
	cond     *Cond
}

// NewResource returns a resource admitting up to capacity concurrent holders.
func NewResource(e *Engine, label string, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{capacity: capacity, cond: NewCond(e, "resource "+label)}
}

// Acquire blocks p until a slot is available.
func (r *Resource) Acquire(p *Proc) {
	for r.inUse >= r.capacity {
		r.cond.Wait(p)
	}
	r.inUse++
}

// Release frees a slot and wakes one waiter.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: release of idle resource")
	}
	r.inUse--
	r.cond.Signal()
}

// InUse reports the current number of holders.
func (r *Resource) InUse() int { return r.inUse }
