package sim

// Proc is a simulated process: a goroutine that advances simulated time by
// blocking on the engine. All Proc methods must be called from the process's
// own goroutine (that is, from within the function passed to Spawn).
type Proc struct {
	eng  *Engine
	name string
	pid  int

	resume    chan struct{}
	started   bool
	done      bool
	daemon    bool
	blockedOn string // human-readable reason, for deadlock reports

	// wakeFn is the method value p.wake, captured once at spawn so that
	// wakers (Sleep, fluids, condition variables) schedule it without
	// allocating a fresh closure per wakeup.
	wakeFn func()
}

// SpawnAt creates a process that will begin executing fn at simulated time
// start (which must be >= now). The process counts as live until fn returns.
func (e *Engine) SpawnAt(start Time, name string, fn func(*Proc)) *Proc {
	return e.spawn(start, name, false, fn)
}

func (e *Engine) spawn(start Time, name string, daemon bool, fn func(*Proc)) *Proc {
	p := &Proc{eng: e, name: name, pid: e.nextPID, daemon: daemon, resume: make(chan struct{})}
	p.wakeFn = p.wake
	e.nextPID++
	e.procs = append(e.procs, p)
	if !daemon {
		e.liveProc++
	}
	go func() {
		<-p.resume // wait for the start event
		fn(p)
		p.done = true
		if !daemon {
			e.liveProc--
		}
		e.yield <- struct{}{}
	}()
	e.Schedule(start, func() {
		p.started = true
		p.wake()
	})
	return p
}

// Spawn creates a process starting at the current simulated time.
func (e *Engine) Spawn(name string, fn func(*Proc)) *Proc {
	return e.spawn(e.now, name, false, fn)
}

// SpawnDaemon creates a service process (device engines, kernel worker
// threads) that may block forever without counting as a deadlock: Run
// returns normally when only daemons remain.
func (e *Engine) SpawnDaemon(name string, fn func(*Proc)) *Proc {
	return e.spawn(e.now, name, true, fn)
}

// wake transfers control to the process goroutine and returns when it parks
// again (or finishes). It must be called from engine/event context.
func (p *Proc) wake() {
	p.resume <- struct{}{}
	<-p.eng.yield
}

// park returns control to the engine until the process is woken.
// reason is recorded for deadlock diagnostics.
func (p *Proc) park(reason string) {
	p.blockedOn = reason
	p.eng.yield <- struct{}{}
	<-p.resume
	p.blockedOn = ""
}

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// PID returns the unique process id.
func (p *Proc) PID() int { return p.pid }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.eng.now }

// Sleep suspends the process for simulated duration d (d <= 0 yields at the
// current time, running after already-scheduled same-time events).
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.eng.Schedule(p.eng.now+d, p.wakeFn)
	p.park("sleep")
}

// Yield reschedules the process at the current time behind pending events.
func (p *Proc) Yield() { p.Sleep(0) }
