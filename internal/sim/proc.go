package sim

import "fmt"

// Proc is a simulated process: a goroutine that advances simulated time by
// blocking on the engine. All Proc methods must be called from the process's
// own goroutine (that is, from within the function passed to Spawn).
//
// A process is homed on a domain. Machine-homed processes (the default) may
// use every engine primitive; while homed on a lane (between Enter and
// Exit) a process runs its events on that lane's worker — concurrently with
// other lanes under the parallel engine — and may therefore only touch
// lane-local and process-local state: Sleep, Yield, Now and Exit. Shared
// primitives (conditions, fluids, mailboxes, resources, sends) require
// machine residence and panic otherwise.
type Proc struct {
	eng  *Engine
	name string
	pid  int

	// dom is the process's home domain; wake events fire there.
	dom Domain
	// laneCtx is the lane the process is currently executing on (nil in
	// machine context or serial mode). Set by wake before the control
	// transfer, so the process goroutine observes it via the channel
	// handshake.
	laneCtx *lane

	// resume and yield are the per-process control-transfer pair: wakers
	// send on resume and wait on yield; the process parks by sending on
	// yield and waiting on resume. Per-process (rather than engine-global)
	// channels let lane workers resume their processes concurrently.
	resume chan struct{}
	yield  chan struct{}

	started   bool
	done      bool
	daemon    bool
	blockedOn string // human-readable reason, for deadlock reports

	// wakeFn is the method value p.wake, captured once at spawn so that
	// wakers (Sleep, fluids, condition variables) schedule it without
	// allocating a fresh closure per wakeup.
	wakeFn func()
}

// SpawnAt creates a process that will begin executing fn at simulated time
// start (which must be >= now). The process counts as live until fn returns.
func (e *Engine) SpawnAt(start Time, name string, fn func(*Proc)) *Proc {
	return e.spawn(start, name, false, fn)
}

func (e *Engine) spawn(start Time, name string, daemon bool, fn func(*Proc)) *Proc {
	p := &Proc{
		eng: e, name: name, pid: e.nextPID, daemon: daemon,
		resume: make(chan struct{}), yield: make(chan struct{}),
	}
	p.wakeFn = p.wake
	e.nextPID++
	e.procs = append(e.procs, p)
	if !daemon {
		e.liveProc.Add(1)
	}
	go func() {
		<-p.resume // wait for the start event
		if !e.terminating.Load() {
			// During Terminate a parked process panics procKilled out of
			// park; recover exactly that (deferred cleanup has already run
			// on the unwind) and fall through to the reaping handshake.
			func() {
				defer func() {
					if r := recover(); r != nil {
						if _, ok := r.(procKilled); !ok {
							panic(r)
						}
					}
				}()
				fn(p)
			}()
		}
		p.done = true
		if !daemon {
			e.liveProc.Add(-1)
		}
		p.yield <- struct{}{}
	}()
	e.Schedule(start, func() {
		p.started = true
		p.wake()
	})
	return p
}

// Spawn creates a process starting at the current simulated time.
func (e *Engine) Spawn(name string, fn func(*Proc)) *Proc {
	return e.spawn(e.now, name, false, fn)
}

// SpawnDaemon creates a service process (device engines, kernel worker
// threads) that may block forever without counting as a deadlock: Run
// returns normally when only daemons remain.
func (e *Engine) SpawnDaemon(name string, fn func(*Proc)) *Proc {
	return e.spawn(e.now, name, true, fn)
}

// wake transfers control to the process goroutine and returns when it parks
// again (or finishes). It must be called from the executor owning the
// process's wake event: the engine loop for machine-homed processes, the
// lane worker for lane-homed ones.
func (p *Proc) wake() {
	if p.dom != DomainMachine && !p.eng.serial {
		p.laneCtx = p.eng.lanes[p.dom-1]
	} else {
		p.laneCtx = nil
	}
	p.resume <- struct{}{}
	<-p.yield
}

// park returns control to the executor until the process is woken.
// reason is recorded for deadlock diagnostics.
func (p *Proc) park(reason string) {
	p.blockedOn = reason
	p.yield <- struct{}{}
	<-p.resume
	if p.eng.terminating.Load() {
		panic(procKilled{})
	}
	p.blockedOn = ""
}

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// PID returns the unique process id.
func (p *Proc) PID() int { return p.pid }

// Now returns the current simulated time: the lane-local clock while homed
// on a lane, the machine clock otherwise.
func (p *Proc) Now() Time {
	if lc := p.laneCtx; lc != nil {
		return lc.now
	}
	return p.eng.now
}

// Domain returns the process's current home domain.
func (p *Proc) Domain() Domain { return p.dom }

// requireMachine guards shared-state primitives: they are machine-domain
// only, in both modes (so serial remains the exact reference for parallel).
func (p *Proc) requireMachine(what string) {
	if p.dom != DomainMachine {
		panic(fmt.Sprintf("sim: %s from process %s while homed on a lane (call Exit first)", what, p.name))
	}
}

// Sleep suspends the process for simulated duration d (d <= 0 yields at the
// current time, running after already-scheduled same-time events).
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	if lc := p.laneCtx; lc != nil {
		lc.schedule(p.dom, lc.now+d, p.wakeFn)
		p.park("sleep")
		return
	}
	p.eng.ScheduleDomain(p.dom, p.eng.now+d, p.wakeFn)
	p.park("sleep")
}

// Yield reschedules the process at the current time behind pending events.
func (p *Proc) Yield() { p.Sleep(0) }

// Enter homes the process on lane d. It costs the engine's declared
// lookahead of simulated time — the modeled scheduling-in latency of
// binding a context to its dedicated core — in both modes; that charge is
// what lets the parallel engine run the lane ahead of the machine clock
// without coordination. Must be called from machine residence.
func (p *Proc) Enter(d Domain) {
	p.requireMachine("Enter")
	if d <= 0 || int(d) > len(p.eng.lanes) {
		panic(fmt.Sprintf("sim: Enter on unknown domain %d", d))
	}
	p.dom = d
	p.eng.ScheduleDomain(d, p.eng.now+p.eng.lookahead, p.wakeFn)
	p.park("enter " + p.eng.lanes[d-1].name)
}

// Exit returns the process to machine residence. Like Enter it costs the
// engine's declared lookahead of simulated time — the modeled scheduling-out
// latency of rejoining the shared machine — in both modes; that charge keeps
// the hop at or beyond the parallel engine's round bound, so the machine
// never observes it mid-window. A machine-homed process may call it as a
// no-op.
func (p *Proc) Exit() {
	if p.dom == DomainMachine {
		return
	}
	p.dom = DomainMachine
	if lc := p.laneCtx; lc != nil {
		lc.schedule(DomainMachine, lc.now+p.eng.lookahead, p.wakeFn)
		p.park("exit lane")
		return
	}
	p.eng.ScheduleDomain(DomainMachine, p.eng.now+p.eng.lookahead, p.wakeFn)
	p.park("exit lane")
}
