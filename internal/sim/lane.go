package sim

import (
	"fmt"
	"sync"
)

// Parallel execution: sharded event lanes under a conservative time-window
// barrier (Chandy–Misra–Bryant-style, specialised to this machine model).
//
// Events are partitioned by domain: the machine domain (shared bus, caches,
// coherence directory, kernel and DMA state) executes serially on the
// coordinator in strict (at, seq) order, exactly like the reference engine;
// per-rank lanes execute concurrently on worker goroutines during "rounds".
// A round runs every lane event with key strictly below the safe bound
//
//	bound = min((t0 + lookahead, 0), next machine event key, (limit, max))
//
// where t0 is the globally earliest pending event. Below that bound a lane
// cannot be affected by anything it has not already seen: machine events
// (the only writers of shared state and the only external schedulers onto
// lanes) all lie at or beyond the bound, and crossing a domain edge — a
// machine event entering a lane, a lane event hopping back to the machine —
// always costs at least the declared lookahead of modeled latency, so
// nothing produced during the round can land below the bound either.
//
// Determinism. The serial engine assigns each newly scheduled event the next
// global sequence number at the moment its parent executes, and executes
// events in (at, seq) order; every tie-break, float accumulation and
// artefact follows from that stream. The parallel engine reproduces it
// exactly:
//
//   - During a round each lane executes only its own events and appends an
//     execution log entry per event, recording the Schedule calls it issued
//     (its children) in issue order. A child targeting the lane itself with
//     key below the bound is inserted provisionally into the lane's own heap
//     — ordered after every committed event and after earlier provisional
//     inserts, which is exactly where serial's later-assigned sequence
//     number would place it — so chained same-lane work (a process's
//     back-to-back sleeps) executes within the round.
//   - At the barrier the coordinator merges the per-lane logs by (at, seq),
//     which is the serial execution order, and assigns children their true
//     sequence numbers from the live global counter as each log entry is
//     consumed — the same order serial would have issued them. Provisional
//     entries have their true sequence patched before the merge reaches
//     them (their parent, on the same lane, is always consumed first).
//     Cross-domain children are routed to their target heaps carrying their
//     true sequence numbers.
//
// Cross-domain children must satisfy at >= lane now + lookahead (enforced;
// Proc.Exit charges exactly that), which puts them at or beyond the bound:
// serial executes them after every event the round ran, so assigning their
// descendants' sequence numbers after the barrier matches serial too.
type lane struct {
	dom  Domain
	name string
	eng  *Engine

	events eventQueue
	// now is the lane-local clock (the at of the event being executed);
	// frontier is the highest time the lane has committed to having
	// executed, which future cross-domain scheduling must respect.
	now      Time
	frontier Time

	// Round-scoped state, touched only by the lane's worker during a round
	// and by the coordinator at the barrier.
	boundAt  Time   // exclusive execution bound for the current round
	boundSeq uint64 // .
	log      []logEntry
	kids     []child
	provSeq  uint64 // provisional sequence numbers handed out this round
	provIdx  []int  // provisional id -> log index, built at the barrier
	pos      int    // merge cursor
}

// logEntry records one executed lane event and the range of children it
// scheduled (indices into lane.kids; children of an entry are contiguous
// because only one event executes on a lane at a time).
type logEntry struct {
	at       Time
	seq      uint64 // provisional (>= provBase) until patched at the merge
	kidStart int
	kidEnd   int
}

// child is one Schedule call issued from lane context during a round.
type child struct {
	dom  Domain
	at   Time
	fn   func()
	prov uint64 // provisional seq if inserted into the lane's own heap mid-round
}

// provBase offsets provisional sequence numbers above every real one, so a
// provisional insert orders after all committed events at the same time —
// exactly where its true (later-assigned) sequence number will place it.
const provBase = uint64(1) << 63

// keyLess is the (at, seq) lexicographic order on event keys.
func keyLess(aAt Time, aSeq uint64, bAt Time, bSeq uint64) bool {
	if aAt != bAt {
		return aAt < bAt
	}
	return aSeq < bSeq
}

// schedule records a Schedule call issued from lane context. Same-lane
// children below the round bound are inserted provisionally and execute
// within the round; everything else is committed with its true sequence
// number at the barrier.
func (ln *lane) schedule(d Domain, at Time, fn func()) {
	if at < ln.now {
		panic(fmt.Sprintf("sim: lane %s scheduling event at %v before lane now %v", ln.name, at, ln.now))
	}
	c := child{dom: d, at: at, fn: fn}
	if d != ln.dom {
		if at < ln.now+ln.eng.lookahead {
			panic(fmt.Sprintf("sim: lane %s scheduling cross-domain event at %v, below now %v + lookahead %v",
				ln.name, at, ln.now, ln.eng.lookahead))
		}
	} else if keyLess(at, provBase+ln.provSeq, ln.boundAt, ln.boundSeq) {
		c.prov = provBase + ln.provSeq
		ln.provSeq++
		ln.events.push(event{at: at, seq: c.prov, dom: int32(d), fn: fn})
	}
	ln.kids = append(ln.kids, c)
	ln.log[len(ln.log)-1].kidEnd = len(ln.kids)
}

// run executes every pending lane event with key strictly below the round
// bound, in (at, seq) order, logging each event and its children. Runs on a
// worker goroutine; touches only lane-local and process-local state.
func (ln *lane) run() {
	for len(ln.events) > 0 {
		top := ln.events[0]
		if !keyLess(top.at, top.seq, ln.boundAt, ln.boundSeq) {
			break
		}
		ev := ln.events.pop()
		ln.now = ev.at
		ln.frontier = ev.at
		ln.log = append(ln.log, logEntry{at: ev.at, seq: ev.seq, kidStart: len(ln.kids), kidEnd: len(ln.kids)})
		ev.fn()
	}
}

// runParallel is the lane-sharded execution path. The coordinator
// interleaves serial machine-event execution with parallel lane rounds,
// always advancing the globally least (at, seq) work first.
func (e *Engine) runParallel(limit Time) error {
	for !e.stopped.Load() {
		machTop, haveMach := e.peekMachine()
		laneAt, laneSeq, haveLane := e.peekLanes()
		if !haveMach && !haveLane {
			break
		}
		if haveMach && (!haveLane || machTop.before(event{at: laneAt, seq: laneSeq})) {
			// Machine work is globally least: execute it serially —
			// identical to the reference path, shared state included.
			if limit >= 0 && machTop.at > limit {
				e.now = limit
				return e.err
			}
			next := e.events.pop()
			e.now = next.at
			if e.trace != nil {
				e.trace(next.at, next.seq, Domain(next.dom))
			}
			next.fn()
			continue
		}
		if limit >= 0 && laneAt > limit {
			e.now = limit
			return e.err
		}
		e.laneRound(laneAt, limit)
	}
	// Report the time of the last executed event, wherever it ran.
	for _, ln := range e.lanes {
		if ln.frontier > e.now {
			e.now = ln.frontier
		}
	}
	return e.finish()
}

// peekMachine returns the machine heap's least event without popping it.
func (e *Engine) peekMachine() (event, bool) {
	if len(e.events) == 0 {
		return event{}, false
	}
	return e.events[0], true
}

// peekLanes returns the least (at, seq) over every lane heap.
func (e *Engine) peekLanes() (at Time, seq uint64, ok bool) {
	for _, ln := range e.lanes {
		if len(ln.events) == 0 {
			continue
		}
		top := ln.events[0]
		if !ok || top.before(event{at: at, seq: seq}) {
			at, seq, ok = top.at, top.seq, true
		}
	}
	return at, seq, ok
}

// laneRound runs one conservative window: every eligible lane executes its
// events up to the safe bound concurrently, then the coordinator merges the
// execution logs and commits the scheduled children in serial order.
func (e *Engine) laneRound(t0 Time, limit Time) {
	boundAt, boundSeq := t0+e.lookahead, uint64(0) // exclusive bound
	if machTop, ok := e.peekMachine(); ok && keyLess(machTop.at, machTop.seq, boundAt, boundSeq) {
		// Lane events must stay strictly below the next machine event: it
		// is the earliest point shared state can change.
		boundAt, boundSeq = machTop.at, machTop.seq
	}
	if limit >= 0 && limit < boundAt {
		boundAt, boundSeq = limit, ^uint64(0)
	}

	active := e.roundLanes[:0]
	for _, ln := range e.lanes {
		if len(ln.events) == 0 {
			continue
		}
		top := ln.events[0]
		if keyLess(top.at, top.seq, boundAt, boundSeq) {
			ln.boundAt, ln.boundSeq = boundAt, boundSeq
			active = append(active, ln)
		}
	}
	if len(active) == 0 {
		// The window is too narrow to batch (lookahead zero or unset): run
		// the globally least lane event alone, which is always safe. The
		// engine stays correct but degrades to serialised rounds.
		var best *lane
		for _, ln := range e.lanes {
			if len(ln.events) == 0 {
				continue
			}
			if best == nil || ln.events[0].before(best.events[0]) {
				best = ln
			}
		}
		best.boundAt, best.boundSeq = best.events[0].at, best.events[0].seq+1
		active = append(active, best)
	}
	e.roundLanes = active

	e.roundActive.Store(true)
	if len(active) == 1 {
		active[0].run()
	} else {
		var wg sync.WaitGroup
		for _, ln := range active {
			wg.Add(1)
			go func(ln *lane) {
				defer wg.Done()
				ln.run()
			}(ln)
		}
		wg.Wait()
	}
	e.roundActive.Store(false)

	e.mergeRound(active)
}

// mergeRound replays the round's per-lane execution logs in (at, seq) order
// — the serial execution order — emitting trace records and assigning every
// scheduled child its true sequence number from the live global counter at
// the moment its parent is consumed, exactly as serial execution would.
func (e *Engine) mergeRound(active []*lane) {
	for _, ln := range active {
		if ln.provSeq == 0 {
			continue
		}
		// Map provisional ids to log positions so parents can patch their
		// in-round children's true sequence numbers.
		ln.provIdx = ln.provIdx[:0]
		for int(ln.provSeq) > len(ln.provIdx) {
			ln.provIdx = append(ln.provIdx, -1)
		}
		for i := range ln.log {
			if ln.log[i].seq >= provBase {
				ln.provIdx[ln.log[i].seq-provBase] = i
			}
		}
	}
	for {
		var best *lane
		for _, ln := range active {
			if ln.pos >= len(ln.log) {
				continue
			}
			en := &ln.log[ln.pos]
			if best == nil || keyLess(en.at, en.seq, best.log[best.pos].at, best.log[best.pos].seq) {
				best = ln
			}
		}
		if best == nil {
			break
		}
		en := &best.log[best.pos]
		best.pos++
		if e.trace != nil {
			e.trace(en.at, en.seq, best.dom)
		}
		for i := en.kidStart; i < en.kidEnd; i++ {
			c := &best.kids[i]
			e.seq++
			if c.prov != 0 {
				// Executed (or still pending) within the round on the same
				// lane: give its log entry the true sequence number so the
				// merge orders it exactly as serial did.
				best.log[best.provIdx[c.prov-provBase]].seq = e.seq
				continue
			}
			ev := event{at: c.at, seq: e.seq, dom: int32(c.dom), fn: c.fn}
			if c.dom == DomainMachine {
				if c.at < e.now {
					panic(fmt.Sprintf("sim: lane commit at %v behind machine clock %v", c.at, e.now))
				}
				e.events.push(ev)
				continue
			}
			ln := e.lanes[c.dom-1]
			if c.at < ln.frontier {
				panic(fmt.Sprintf("sim: lane commit at %v behind lane %s frontier %v "+
					"(cross-lane delay below the declared lookahead %v)", c.at, ln.name, ln.frontier, e.lookahead))
			}
			ln.events.push(ev)
		}
	}
	for _, ln := range active {
		ln.log, ln.kids = ln.log[:0], ln.kids[:0]
		ln.pos, ln.provSeq = 0, 0
	}
}
