// Package sim implements a deterministic discrete-event simulation kernel.
//
// Simulated processes are ordinary goroutines that cooperate with the engine:
// exactly one goroutine (either the engine loop or a single process) runs at
// any instant, so simulations are sequential and fully deterministic. Events
// scheduled for the same simulated time fire in scheduling order.
//
// The package also provides the synchronization primitives the rest of the
// simulator is built from: condition variables, mailboxes, FIFO resources,
// and fluid-flow (processor-sharing) resources used to model memory-bus
// bandwidth and per-core CPU time.
package sim

import "fmt"

// Time is a simulated timestamp or duration in picoseconds.
//
// Picosecond resolution keeps rounding error negligible when modelling
// per-cache-block costs (a 64-byte line at 10 GiB/s is ~6 ns) while still
// allowing simulations spanning thousands of seconds within int64 range.
type Time int64

// Common duration units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds returns t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Nanoseconds returns t as a floating-point number of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds returns t as a floating-point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// FromSeconds converts a floating-point number of seconds to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// FromNanoseconds converts a floating-point number of nanoseconds to a Time.
func FromNanoseconds(ns float64) Time { return Time(ns * float64(Nanosecond)) }

// String formats the time with an adaptive unit, e.g. "1.234ms".
func (t Time) String() string {
	switch {
	case t < 0:
		return "-" + (-t).String()
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%.3fns", t.Nanoseconds())
	case t < Millisecond:
		return fmt.Sprintf("%.3fus", t.Microseconds())
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.3fs", t.Seconds())
	}
}
