package kernel

import (
	"fmt"

	"knemesis/internal/hw"
	"knemesis/internal/mem"
	"knemesis/internal/sim"
	"knemesis/internal/topo"
)

// pipeSeg is one queued chunk of pipe data. For vmsplice the region aliases
// the sender's (pinned) user pages; for writev it aliases one kernel page
// slot that already holds a copy of the data.
type pipeSeg struct {
	data  mem.Region
	pages int64
	slot  int // kernel page slot index, or -1 for spliced user pages
}

// Pipe is a Unix pipe with the kernel's page-slot accounting: it holds at
// most PIPE_BUFFERS pages (default 16, i.e. 64 KiB of 4 KiB pages), which is
// why a vmsplice-based transfer proceeds in 64 KiB windows.
type Pipe struct {
	os       *OS
	capPages int64

	segs      []pipeSeg
	usedPages int64

	readable *sim.Cond
	writable *sim.Cond

	// Kernel page slots for Writev data (allocated lazily, reused), one
	// buffer per PIPE_BUFFERS slot exactly as the Linux pipe implements.
	pagePool  []*mem.Buffer
	freeSlots []int

	// Stats
	BytesSpliced int64
	BytesWritten int64
	BytesRead    int64
}

// NewPipe creates a pipe with the machine's configured PIPE_BUFFERS capacity.
func (os *OS) NewPipe(name string) *Pipe {
	return &Pipe{
		os:       os,
		capPages: int64(os.M.Params().PipePages),
		readable: sim.NewCond(os.M.Eng, "pipe-readable "+name),
		writable: sim.NewCond(os.M.Eng, "pipe-writable "+name),
	}
}

// CapBytes returns the pipe capacity in bytes.
func (pp *Pipe) CapBytes() int64 { return pp.capPages * pp.os.M.Params().PageBytes }

func pagesFor(n, pageBytes int64) int64 {
	if n <= 0 {
		return 0
	}
	return (n + pageBytes - 1) / pageBytes
}

// Vmsplice attaches the sender's user pages to the pipe without copying.
// It blocks until at least one page slot is free, attaches as much of vec as
// fits, and returns the attached byte count (the caller loops, exactly like
// the LMT backend does). Costs: one syscall + VFS overhead + pinning of the
// attached pages.
func (pp *Pipe) Vmsplice(p *sim.Proc, core topo.CoreID, vec mem.IOVec) int64 {
	if err := vec.Validate(); err != nil {
		panic(err)
	}
	par := pp.os.M.Params()
	pp.os.SyscallEnter(p, core)
	pp.os.M.LocalDelay(p, core, par.VFSOverhead)

	pp.blockUntil(p, pp.writable, func() bool { return pp.usedPages < pp.capPages })

	var attached int64
	var attachedVec mem.IOVec
	free := pp.capPages - pp.usedPages
	for _, r := range vec {
		if free <= 0 {
			break
		}
		n := r.Len
		maxBytes := free * par.PageBytes
		if n > maxBytes {
			n = maxBytes
		}
		if n <= 0 {
			continue
		}
		seg := pipeSeg{
			data:  mem.Region{Buf: r.Buf, Off: r.Off, Len: n},
			pages: pagesFor(n, par.PageBytes),
			slot:  -1,
		}
		attachedVec = append(attachedVec, seg.data)
		pp.segs = append(pp.segs, seg)
		pp.usedPages += seg.pages
		free -= seg.pages
		attached += n
	}
	pp.os.Pin(p, core, attachedVec)
	pp.BytesSpliced += attached
	if attached > 0 {
		pp.readable.Broadcast()
	}
	return attached
}

// Writev copies data from user space into kernel pipe pages (the two-copy
// baseline the paper compares against in Figure 3). Blocks until at least
// one page is free; copies as much as fits; returns bytes written.
func (pp *Pipe) Writev(p *sim.Proc, core topo.CoreID, vec mem.IOVec) int64 {
	if err := vec.Validate(); err != nil {
		panic(err)
	}
	par := pp.os.M.Params()
	pp.os.SyscallEnter(p, core)
	pp.os.M.LocalDelay(p, core, par.VFSOverhead)

	pp.blockUntil(p, pp.writable, func() bool { return pp.usedPages < pp.capPages })
	if pp.pagePool == nil {
		for i := int64(0); i < pp.capPages; i++ {
			pp.pagePool = append(pp.pagePool, pp.os.KernelSpace.Alloc(par.PageBytes))
			pp.freeSlots = append(pp.freeSlots, int(i))
		}
	}

	// Fill one free kernel page slot per copied page, exactly like the
	// Linux pipe's per-page buffers.
	var written int64
	for _, r := range vec {
		off := r.Off
		remain := r.Len
		for remain > 0 && len(pp.freeSlots) > 0 {
			slot := pp.freeSlots[0]
			pp.freeSlots = pp.freeSlots[1:]
			n := par.PageBytes
			if n > remain {
				n = remain
			}
			kreg := mem.Region{Buf: pp.pagePool[slot], Off: 0, Len: n}
			pp.os.M.CopyRange(p, core, kreg, mem.Region{Buf: r.Buf, Off: off, Len: n},
				hw.CopyOpts{Kernel: true})
			pp.segs = append(pp.segs, pipeSeg{data: kreg, pages: 1, slot: slot})
			pp.usedPages++
			off += n
			remain -= n
			written += n
		}
		if len(pp.freeSlots) == 0 {
			break
		}
	}
	pp.BytesWritten += written
	if written > 0 {
		pp.readable.Broadcast()
	}
	return written
}

// Readv copies queued pipe data into dst, blocking until at least one byte
// is available. It copies at most dst.Len bytes and returns the count.
// Freed page slots wake blocked writers.
func (pp *Pipe) Readv(p *sim.Proc, core topo.CoreID, dst mem.Region) int64 {
	if dst.Len <= 0 {
		panic(fmt.Sprintf("kernel: Readv with %d-byte destination", dst.Len))
	}
	par := pp.os.M.Params()
	pp.os.SyscallEnter(p, core)
	pp.os.M.LocalDelay(p, core, par.VFSOverhead)

	pp.blockUntil(p, pp.readable, func() bool { return len(pp.segs) > 0 })

	var read int64
	for read < dst.Len && len(pp.segs) > 0 {
		// Copy the head segment descriptor by value: CopyRange blocks,
		// and a concurrently appending writer may reallocate pp.segs.
		// The pipe supports a single reader, so pp.segs[0] itself is
		// stable across the block and is re-taken by index afterwards.
		cur := pp.segs[0]
		n := cur.data.Len
		if n > dst.Len-read {
			n = dst.Len - read
		}
		pp.os.M.CopyRange(p, core,
			mem.Region{Buf: dst.Buf, Off: dst.Off + read, Len: n},
			mem.Region{Buf: cur.data.Buf, Off: cur.data.Off, Len: n},
			hw.CopyOpts{Kernel: true})
		read += n
		seg := &pp.segs[0]
		if n == seg.data.Len {
			pp.usedPages -= seg.pages
			if seg.slot >= 0 {
				pp.freeSlots = append(pp.freeSlots, seg.slot)
			}
			pp.segs = pp.segs[1:]
		} else {
			// Partial read: shrink the segment; slot accounting keeps
			// whole pages until the segment fully drains.
			remaining := seg.data.Len - n
			freedPages := seg.pages - pagesFor(remaining, par.PageBytes)
			seg.data = mem.Region{Buf: seg.data.Buf, Off: seg.data.Off + n, Len: remaining}
			seg.pages -= freedPages
			pp.usedPages -= freedPages
		}
	}
	pp.BytesRead += read
	pp.writable.Broadcast()
	return read
}

// blockUntil waits for ok() on cond; if the process actually blocked, it
// pays the scheduler wakeup latency — the pipe synchronization overhead the
// paper observes for vmsplice across dies (§4.2).
func (pp *Pipe) blockUntil(p *sim.Proc, cond *sim.Cond, ok func() bool) {
	blocked := false
	for !ok() {
		cond.Wait(p)
		blocked = true
	}
	if blocked {
		p.Sleep(pp.os.M.Params().SchedWakeLatency)
	}
}

// Buffered reports queued bytes (for tests).
func (pp *Pipe) Buffered() int64 {
	var n int64
	for _, s := range pp.segs {
		n += s.data.Len
	}
	return n
}
