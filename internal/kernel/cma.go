package kernel

import (
	"fmt"

	"knemesis/internal/hw"
	"knemesis/internal/mem"
	"knemesis/internal/sim"
	"knemesis/internal/topo"
)

// cmaChunkBytes is the kernel copy-loop granularity of a CMA transfer,
// matching the page-batched copy loop of the real implementation.
const cmaChunkBytes = 64 * 1024

// ProcessVMReadv models the Linux Cross Memory Attach syscall
// (process_vm_readv): the calling process reads the remote process's memory
// with one kernel-mediated copy and no intermediate buffering. It is the
// mainline successor of KNEM's receive command — same single-copy data
// path, but with no module to load, no cookie registry and no ioctl
// dispatch: the remote iovec is named directly in the call.
//
// Costs: one syscall crossing, get_user_pages pinning of the remote pages
// (the kernel must hold them while it copies), the chunked kernel copy
// itself, and the unpin. The caller's core performs the copy, so the cache
// effects match KNEM's synchronous mode: the destination lands hot in the
// receiver's cache while the remote source stays clean.
func (os *OS) ProcessVMReadv(p *sim.Proc, core topo.CoreID, local, remote mem.IOVec) int64 {
	if err := local.Validate(); err != nil {
		panic(err)
	}
	if err := remote.Validate(); err != nil {
		panic(err)
	}
	if local.TotalLen() != remote.TotalLen() {
		panic(fmt.Sprintf("kernel: process_vm_readv length mismatch %d != %d",
			local.TotalLen(), remote.TotalLen()))
	}
	os.SyscallEnter(p, core)
	pages := os.Pin(p, core, remote)
	var moved int64
	for _, pair := range mem.Overlay(local, remote, cmaChunkBytes) {
		os.M.CopyRange(p, core, pair.Dst, pair.Src, hw.CopyOpts{Kernel: true})
		moved += pair.Src.Len
	}
	os.Unpin(p, core, pages)
	os.CMACalls++
	os.CMABytes += moved
	return moved
}
