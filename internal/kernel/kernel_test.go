package kernel

import (
	"testing"
	"testing/quick"

	"knemesis/internal/hw"
	"knemesis/internal/mem"
	"knemesis/internal/sim"
	"knemesis/internal/topo"
	"knemesis/internal/units"
)

func newOS() *OS { return New(hw.New(topo.XeonE5345())) }

func TestSyscallCost(t *testing.T) {
	os := newOS()
	os.M.Eng.Spawn("p", func(p *sim.Proc) {
		t0 := p.Now()
		os.SyscallEnter(p, 0)
		if d := p.Now() - t0; d < os.M.Params().SyscallCost {
			t.Errorf("syscall took %v, want >= %v", d, os.M.Params().SyscallCost)
		}
	})
	if err := os.M.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if os.Syscalls != 1 {
		t.Fatalf("syscall count = %d", os.Syscalls)
	}
}

func TestPinCountsPages(t *testing.T) {
	os := newOS()
	buf := os.M.Mem.NewSpace("u").Alloc(64 * units.KiB)
	os.M.Eng.Spawn("p", func(p *sim.Proc) {
		pages := os.Pin(p, 0, mem.VecOf(buf))
		if pages != 16 {
			t.Errorf("pinned %d pages, want 16", pages)
		}
	})
	if err := os.M.Eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPipeVmspliceReadvSingleCopy(t *testing.T) {
	os := newOS()
	usender := os.M.Mem.NewSpace("sender")
	urecv := os.M.Mem.NewSpace("recv")
	src := usender.Alloc(256 * units.KiB)
	dst := urecv.Alloc(256 * units.KiB)
	src.FillPattern(9)
	pipe := os.NewPipe("t")

	os.M.Eng.Spawn("sender", func(p *sim.Proc) {
		var off int64
		for off < src.Len() {
			off += pipe.Vmsplice(p, 0, mem.IOVec{{Buf: src, Off: off, Len: src.Len() - off}})
		}
	})
	os.M.Eng.Spawn("receiver", func(p *sim.Proc) {
		var off int64
		for off < dst.Len() {
			off += pipe.Readv(p, 2, mem.Region{Buf: dst, Off: off, Len: dst.Len() - off})
		}
	})
	if err := os.M.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !mem.EqualBytes(src, dst) {
		t.Fatal("vmsplice+readv corrupted payload")
	}
	if pipe.BytesSpliced != src.Len() || pipe.BytesRead != src.Len() {
		t.Fatalf("splice/read accounting: %d/%d", pipe.BytesSpliced, pipe.BytesRead)
	}
}

func TestPipeWindowIs64KiB(t *testing.T) {
	os := newOS()
	u := os.M.Mem.NewSpace("u")
	src := u.Alloc(1 * units.MiB)
	pipe := os.NewPipe("t")
	os.M.Eng.Spawn("sender", func(p *sim.Proc) {
		n := pipe.Vmsplice(p, 0, mem.VecOf(src))
		// 16 pages x 4 KiB: one call can attach at most 64 KiB.
		if n != 64*units.KiB {
			t.Errorf("single vmsplice attached %d, want 64KiB", n)
		}
		// The pipe is now full; a second call must block until a reader
		// drains it — verified by deadlock detection if we tried.
		if pipe.Buffered() != 64*units.KiB {
			t.Errorf("buffered = %d", pipe.Buffered())
		}
	})
	if err := os.M.Eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPipeWritevTwoCopies(t *testing.T) {
	os := newOS()
	src := os.M.Mem.NewSpace("s").Alloc(128 * units.KiB)
	dst := os.M.Mem.NewSpace("r").Alloc(128 * units.KiB)
	src.FillPattern(11)
	pipe := os.NewPipe("t")
	os.M.Eng.Spawn("sender", func(p *sim.Proc) {
		var off int64
		for off < src.Len() {
			off += pipe.Writev(p, 0, mem.IOVec{{Buf: src, Off: off, Len: src.Len() - off}})
		}
	})
	os.M.Eng.Spawn("receiver", func(p *sim.Proc) {
		var off int64
		for off < dst.Len() {
			off += pipe.Readv(p, 2, mem.Region{Buf: dst, Off: off, Len: dst.Len() - off})
		}
	})
	if err := os.M.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !mem.EqualBytes(src, dst) {
		t.Fatal("writev+readv corrupted payload")
	}
}

func TestVmspliceFasterThanWritevCrossDie(t *testing.T) {
	// The single-copy path must beat the two-copy path when no cache is
	// shared — the core claim of Figure 3.
	run := func(useVmsplice bool) sim.Time {
		os := newOS()
		src := os.M.Mem.NewSpace("s").Alloc(1 * units.MiB)
		dst := os.M.Mem.NewSpace("r").Alloc(1 * units.MiB)
		pipe := os.NewPipe("t")
		os.M.Eng.Spawn("sender", func(p *sim.Proc) {
			var off int64
			for off < src.Len() {
				v := mem.IOVec{{Buf: src, Off: off, Len: src.Len() - off}}
				if useVmsplice {
					off += pipe.Vmsplice(p, 0, v)
				} else {
					off += pipe.Writev(p, 0, v)
				}
			}
		})
		os.M.Eng.Spawn("receiver", func(p *sim.Proc) {
			var off int64
			for off < dst.Len() {
				off += pipe.Readv(p, 2, mem.Region{Buf: dst, Off: off, Len: dst.Len() - off})
			}
		})
		if err := os.M.Eng.Run(); err != nil {
			t.Fatal(err)
		}
		return os.M.Eng.Now()
	}
	tSplice := run(true)
	tWritev := run(false)
	if float64(tWritev) < 1.2*float64(tSplice) {
		t.Fatalf("writev (%v) should be well slower than vmsplice (%v)", tWritev, tSplice)
	}
}

// Property: arbitrary interleavings of chunk sizes through the pipe always
// deliver the exact byte stream, and page accounting returns to zero.
func TestPipeStreamIntegrityProperty(t *testing.T) {
	prop := func(sizeRaw uint32, readChunkRaw uint16, useWritev bool) bool {
		size := int64(sizeRaw%(512*1024)) + 1
		readChunk := int64(readChunkRaw%32768) + 1
		os := newOS()
		src := os.M.Mem.NewSpace("s").Alloc(size)
		dst := os.M.Mem.NewSpace("r").Alloc(size)
		src.FillPattern(uint64(sizeRaw) * 31)
		pipe := os.NewPipe("t")
		os.M.Eng.Spawn("sender", func(p *sim.Proc) {
			var off int64
			for off < size {
				v := mem.IOVec{{Buf: src, Off: off, Len: size - off}}
				if useWritev {
					off += pipe.Writev(p, 0, v)
				} else {
					off += pipe.Vmsplice(p, 0, v)
				}
			}
		})
		os.M.Eng.Spawn("receiver", func(p *sim.Proc) {
			var off int64
			for off < size {
				n := readChunk
				if n > size-off {
					n = size - off
				}
				off += pipe.Readv(p, 2, mem.Region{Buf: dst, Off: off, Len: n})
			}
		})
		if err := os.M.Eng.Run(); err != nil {
			return false
		}
		return mem.EqualBytes(src, dst) && pipe.Buffered() == 0 && pipe.usedPages == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestKThreadRunsJobs(t *testing.T) {
	os := newOS()
	kt := os.SpawnKThread(1, "worker")
	ran := false
	os.M.Eng.Spawn("user", func(p *sim.Proc) {
		done := sim.NewCond(os.M.Eng, "done")
		kt.Submit(p, 0, os, func(kp *sim.Proc) {
			os.M.LocalDelay(kp, 1, sim.Microsecond)
			ran = true
			done.Broadcast()
		})
		for !ran {
			done.Wait(p)
		}
		kt.Stop()
	})
	if err := os.M.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("kthread job never ran")
	}
}
