package kernel

import (
	"testing"

	"knemesis/internal/mem"
	"knemesis/internal/sim"
	"knemesis/internal/units"
)

func TestProcessVMReadvSingleCopy(t *testing.T) {
	os := newOS()
	remote := os.M.Mem.NewSpace("remote")
	local := os.M.Mem.NewSpace("local")
	src := remote.Alloc(256 * units.KiB)
	dst := local.Alloc(256 * units.KiB)
	src.FillPattern(7)

	os.M.Eng.Spawn("reader", func(p *sim.Proc) {
		n := os.ProcessVMReadv(p, 0, mem.VecOf(dst), mem.VecOf(src))
		if n != src.Len() {
			t.Errorf("moved %d bytes, want %d", n, src.Len())
		}
	})
	if err := os.M.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !mem.EqualBytes(src, dst) {
		t.Fatal("CMA read corrupted payload")
	}
	// One syscall, remote pages pinned (and unpinned), stats recorded.
	if os.Syscalls != 1 {
		t.Errorf("syscalls = %d, want 1", os.Syscalls)
	}
	if want := int64(256 * units.KiB / 4096); os.PagesPinned != want {
		t.Errorf("pinned %d pages, want %d", os.PagesPinned, want)
	}
	if os.CMACalls != 1 || os.CMABytes != src.Len() {
		t.Errorf("CMA stats = %d calls / %d bytes, want 1 / %d", os.CMACalls, os.CMABytes, src.Len())
	}
}

func TestProcessVMReadvVectorial(t *testing.T) {
	// Scatter/gather with mismatched region boundaries on both sides.
	os := newOS()
	remote := os.M.Mem.NewSpace("remote")
	local := os.M.Mem.NewSpace("local")
	a := remote.Alloc(48 * units.KiB)
	b := remote.Alloc(16 * units.KiB)
	d := local.Alloc(64 * units.KiB)
	a.FillPattern(1)
	b.FillPattern(2)
	src := mem.IOVec{{Buf: a, Off: 0, Len: a.Len()}, {Buf: b, Off: 0, Len: b.Len()}}

	os.M.Eng.Spawn("reader", func(p *sim.Proc) {
		os.ProcessVMReadv(p, 0, mem.VecOf(d), src)
	})
	if err := os.M.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !mem.EqualBytes(d.Slice(0, a.Len()), a) || !mem.EqualBytes(d.Slice(a.Len(), b.Len()), b) {
		t.Fatal("vectorial CMA read corrupted payload")
	}
}

func TestProcessVMReadvLengthMismatchPanics(t *testing.T) {
	os := newOS()
	remote := os.M.Mem.NewSpace("remote")
	local := os.M.Mem.NewSpace("local")
	src := remote.Alloc(8 * units.KiB)
	dst := local.Alloc(4 * units.KiB)
	os.M.Eng.Spawn("reader", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("length mismatch did not panic")
			}
		}()
		os.ProcessVMReadv(p, 0, mem.VecOf(dst), mem.VecOf(src))
	})
	if err := os.M.Eng.Run(); err != nil {
		t.Fatal(err)
	}
}
