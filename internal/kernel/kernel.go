// Package kernel models the Linux substrate the paper's mechanisms rely on:
// user/kernel crossings, page pinning (get_user_pages), kernel pipes with
// the vmsplice/writev/readv data paths, and kernel worker threads.
//
// Costs follow the paper: a syscall is ~100 ns (§3.1); vmsplice pays extra
// per-call VFS overhead (§4.2); the pipe holds PIPE_BUFFERS=16 pages, so a
// single vmsplice or readv moves at most 64 KiB (§3.1).
package kernel

import (
	"fmt"

	"knemesis/internal/hw"
	"knemesis/internal/mem"
	"knemesis/internal/sim"
	"knemesis/internal/topo"
)

// OS is the simulated operating system for one machine.
type OS struct {
	M *hw.Machine

	// KernelSpace backs kernel-owned pages (pipe buffers). It is a shared
	// space: the kernel may touch it on behalf of any process.
	KernelSpace *mem.Space

	// Stats
	Syscalls    int64
	PagesPinned int64
	CMACalls    int64
	CMABytes    int64
}

// New creates the OS layer for machine m.
func New(m *hw.Machine) *OS {
	return &OS{M: m, KernelSpace: m.Mem.NewSharedSpace("kernel")}
}

// SyscallEnter charges one user/kernel crossing to the core.
func (os *OS) SyscallEnter(p *sim.Proc, core topo.CoreID) {
	os.Syscalls++
	os.M.LocalDelay(p, core, os.M.Params().SyscallCost)
}

// Pin charges get_user_pages for every page of the vector and returns the
// pinned page count. Pinning is required before the kernel or DMA hardware
// may address user memory (§3.3).
func (os *OS) Pin(p *sim.Proc, core topo.CoreID, vec mem.IOVec) int64 {
	var pages int64
	for _, r := range vec {
		pages += r.Buf.Slice(r.Off, r.Len).Pages()
	}
	os.PagesPinned += pages
	os.M.LocalDelay(p, core, os.M.Params().PinPerPage*sim.Time(pages))
	return pages
}

// Unpin releases pages pinned earlier.
func (os *OS) Unpin(p *sim.Proc, core topo.CoreID, pages int64) {
	os.M.LocalDelay(p, core, os.M.Params().UnpinPerPage*sim.Time(pages))
}

// KThread is a kernel worker thread bound to one core, fed through a job
// mailbox. The thread's CPU consumption contends with the user process on
// the same core (hw processor sharing), reproducing the paper's observation
// that the non-I/OAT asynchronous mode "significantly reduces the overall
// throughput since the user-level process competes with the kernel thread
// for the CPU" (§4.3).
type KThread struct {
	Core topo.CoreID
	jobs *sim.Mailbox[func(*sim.Proc)]
}

// SpawnKThread creates a worker bound to core.
func (os *OS) SpawnKThread(core topo.CoreID, name string) *KThread {
	kt := &KThread{
		Core: core,
		jobs: sim.NewMailbox[func(*sim.Proc)](os.M.Eng, name),
	}
	os.M.Eng.SpawnDaemon(fmt.Sprintf("kthread/%s", name), func(p *sim.Proc) {
		for {
			job := kt.jobs.Get(p)
			if job == nil {
				return
			}
			job(p)
		}
	})
	return kt
}

// Submit queues a job on the worker; the submitter pays the wakeup cost.
func (kt *KThread) Submit(p *sim.Proc, submitCore topo.CoreID, os *OS, job func(*sim.Proc)) {
	os.M.LocalDelay(p, submitCore, os.M.Params().KThreadSpawnCost)
	kt.jobs.Put(job)
}

// Stop terminates the worker after pending jobs drain.
func (kt *KThread) Stop() { kt.jobs.Put(nil) }
