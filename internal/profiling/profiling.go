// Package profiling wires the standard pprof file profiles into the CLIs,
// so performance work on the simulator can measure instead of guess:
//
//	knemsim -experiment thresholds -cpuprofile cpu.prof -memprofile mem.prof
//	go tool pprof cpu.prof
package profiling

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins a CPU profile to cpuPath (empty = disabled) and returns a
// stop function that ends it and, when memPath is non-empty, writes a heap
// profile of the final live set. Call the returned function once on the
// normal exit path; error exits that skip it simply lose the profile.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				return err
			}
		}
		return nil
	}, nil
}
