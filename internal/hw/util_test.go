package hw

import (
	"testing"

	"knemesis/internal/sim"
	"knemesis/internal/topo"
	"knemesis/internal/units"
)

func TestUtilizationReport(t *testing.T) {
	m := New(topo.XeonE5345())
	buf := m.Mem.NewSpace("p").Alloc(4 * units.MiB)
	m.Eng.Spawn("worker", func(p *sim.Proc) {
		m.TouchRange(p, 3, buf.Addr(), buf.Len(), false, false)
	})
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	u := m.UtilizationReport()
	if u.Elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
	if u.BusBytesServed < float64(4*units.MiB) {
		t.Fatalf("bus served %.0f bytes, want >= 4MiB of fills", u.BusBytesServed)
	}
	if u.BusUtilization <= 0 || u.BusUtilization > 1.01 {
		t.Fatalf("bus utilization %.3f out of range", u.BusUtilization)
	}
	if len(u.CoreBusySec) != 8 {
		t.Fatalf("core entries = %d", len(u.CoreBusySec))
	}
	if u.CoreBusySec[3] <= 0 {
		t.Fatal("working core shows no busy time")
	}
	if u.CoreBusySec[0] != 0 {
		t.Fatal("idle core shows busy time")
	}
}

func TestIOATFreesCPUvsKernelCopy(t *testing.T) {
	// The paper's CPU-utilization argument, quantitatively: a DMA-bypass
	// transfer consumes no receiver CPU while a kernel copy does. Here we
	// compare a plain TouchRange (CPU copy half) against bus-only usage.
	m := New(topo.XeonE5345())
	buf := m.Mem.NewSpace("p").Alloc(2 * units.MiB)
	m.Eng.Spawn("dma-like", func(p *sim.Proc) {
		// Pure bus flow, no core involvement.
		m.Bus.Consume(p, float64(2*2*units.MiB))
	})
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.UtilizationReport().CoreBusySec[0]; got != 0 {
		t.Fatalf("bus-only transfer consumed %.9f core-seconds", got)
	}
	m2 := New(topo.XeonE5345())
	buf2 := m2.Mem.NewSpace("p").Alloc(2 * units.MiB)
	m2.Eng.Spawn("cpu-copy", func(p *sim.Proc) {
		m2.TouchRange(p, 0, buf2.Addr(), buf2.Len(), false, false)
	})
	if err := m2.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m2.UtilizationReport().CoreBusySec[0]; got <= 0 {
		t.Fatal("CPU copy consumed no core time")
	}
	_ = buf
}

func TestUtilizationSubWindow(t *testing.T) {
	m := New(topo.XeonE5345())
	buf := m.Mem.NewSpace("p").Alloc(4 * units.MiB)
	m.Eng.Spawn("worker", func(p *sim.Proc) {
		m.TouchRange(p, 3, buf.Addr(), buf.Len(), false, false)
		pre := m.UtilizationReport()
		m.TouchRange(p, 5, buf.Addr(), 2*units.MiB, true, false)
		win := m.UtilizationReport().Sub(pre)
		if win.Elapsed <= 0 {
			t.Error("window has no elapsed time")
		}
		if win.BusBytesServed < float64(2*units.MiB) {
			t.Errorf("window bus bytes %.0f, want >= the 2MiB of fills", win.BusBytesServed)
		}
		if win.BusUtilization <= 0 || win.BusUtilization > 1.01 {
			t.Errorf("window bus utilization %.3f out of range", win.BusUtilization)
		}
		if win.CoreBusySec[3] != 0 {
			t.Errorf("core 3 busy %.9f inside a window it did not work in", win.CoreBusySec[3])
		}
		if win.CoreBusySec[5] <= 0 {
			t.Error("working core 5 shows no busy time in the window")
		}
		if got, want := win.TotalCoreBusySec(), win.CoreBusySec[5]; got != want {
			t.Errorf("TotalCoreBusySec %.9f != sole busy core's %.9f", got, want)
		}
	})
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
}
