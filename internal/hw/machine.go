// Package hw assembles a runnable simulated machine from a topology
// description: per-core CPU time (processor-sharing, so kernel threads
// compete with user processes), per-domain L2 caches with MESI-lite
// coherence, a shared memory/FSB bus modelled as a fluid bandwidth
// resource, and the address-space world.
//
// It is the single place where cache traffic is converted into simulated
// time; every higher layer (kernel, KNEM, Nemesis, MPI) expresses its data
// movement through the operations in this package.
package hw

import (
	"fmt"

	"knemesis/internal/cache"
	"knemesis/internal/mem"
	"knemesis/internal/sim"
	"knemesis/internal/topo"
)

// Machine is the runtime hardware state for one simulation.
type Machine struct {
	Topo *topo.Machine
	Eng  *sim.Engine
	Mem  *mem.World

	// Bus is the shared memory/front-side bus in bytes/second. Cache
	// fills, writebacks, coherence transfers and DMA all flow through it.
	Bus *sim.Fluid

	// Cores index by topo.CoreID; each has a processor-sharing CPU fluid.
	Cores []*Core

	// L2s index by L2 domain.
	L2s []*cache.Cache

	coreL2 []int // core -> L2 domain index

	// dir is the machine-wide coherence directory: per block, a presence
	// bitmask over the L2 domains plus the dirty owner. Every cache
	// mutation made by this package keeps it in sync, so coherent
	// accesses need not probe remote caches.
	dir *cache.Directory

	// snoop selects the brute-force probe-every-cache coherence path,
	// kept as the reference implementation the directory is verified
	// against (see SetSnoopCoherence and the differential tests).
	snoop bool
}

// Core is one CPU core's runtime state.
type Core struct {
	ID  topo.CoreID
	CPU *sim.Fluid // capacity 1.0 cpu-second per second
	m   *Machine
}

// New builds a machine runtime on a fresh simulation engine.
func New(t *topo.Machine) *Machine {
	return NewOn(sim.NewEngine(), t)
}

// NewOn builds a machine runtime on an existing engine, so several machines
// (the hosts of a cluster) share one simulated timeline. Each machine still
// owns its memory world, bus, cores and caches; only the clock is common.
func NewOn(eng *sim.Engine, t *topo.Machine) *Machine {
	if err := t.Validate(); err != nil {
		panic(err)
	}
	m := &Machine{
		Topo: t,
		Eng:  eng,
		Mem:  mem.NewWorld(t.Params.PageBytes),
		Bus:  sim.NewFluid(eng, "bus", t.Params.BusBandwidth),
	}
	for i := 0; i < t.Cores; i++ {
		m.Cores = append(m.Cores, &Core{
			ID:  topo.CoreID(i),
			CPU: sim.NewFluid(eng, fmt.Sprintf("core%d", i), 1.0),
			m:   m,
		})
	}
	for d := range t.L2Domains {
		m.L2s = append(m.L2s, cache.New(
			fmt.Sprintf("L2.%d", d), t.L2SizeBytes, t.Params.BlockBytes, t.L2Assoc))
	}
	m.coreL2 = make([]int, t.Cores)
	for i := 0; i < t.Cores; i++ {
		m.coreL2[i] = t.L2Of(topo.CoreID(i))
	}
	m.dir = cache.NewDirectory(len(t.L2Domains))
	return m
}

// SetSnoopCoherence selects the coherence implementation: true switches to
// the brute-force snoop path that probes every cache (the reference
// implementation), false returns to the default directory fast path,
// rebuilding the directory from current cache contents so the mode may be
// flipped mid-run. Both produce identical traffic and statistics.
func (m *Machine) SetSnoopCoherence(snoop bool) {
	if m.snoop && !snoop {
		m.dir.Reset()
		for d, c := range m.L2s {
			dom := d
			c.ForEachResident(func(block uint64, dirty bool) {
				e := m.dir.Entry(block)
				if dirty {
					e.SetOwner(dom)
				} else {
					e.SetPresent(dom)
				}
			})
		}
	}
	m.snoop = snoop
}

// Core returns the runtime core for id.
func (m *Machine) Core(id topo.CoreID) *Core { return m.Cores[id] }

// L2OfCore returns the L2 cache used by core id.
func (m *Machine) L2OfCore(id topo.CoreID) *cache.Cache { return m.L2s[m.coreL2[id]] }

// Params is shorthand for the topology's cost parameters.
func (m *Machine) Params() *topo.Params { return &m.Topo.Params }

// TotalL2Stats sums the statistics of all L2 caches.
func (m *Machine) TotalL2Stats() cache.Stats {
	var s cache.Stats
	for _, c := range m.L2s {
		s.Add(c.Stats())
	}
	return s
}

// L2MissLines reports total machine L2 misses in hardware-line equivalents
// (the unit of the paper's Table 2).
func (m *Machine) L2MissLines() int64 {
	return m.TotalL2Stats().MissesInLines(m.Topo.Params.LineBytes)
}

// FlushCaches invalidates every cache (used between experiment repetitions
// that must not share warm state).
func (m *Machine) FlushCaches() {
	for _, c := range m.L2s {
		c.Flush()
	}
	m.dir.Reset()
}

// Busy charges d of CPU time to the core under processor sharing: if other
// contexts (e.g. a KNEM kernel thread) are runnable on the same core, wall
// time stretches accordingly.
func (c *Core) Busy(p *sim.Proc, d sim.Time) {
	if d <= 0 {
		return
	}
	c.CPU.Consume(p, d.Seconds())
}

// Utilization summarises resource usage over the elapsed simulated time.
type Utilization struct {
	Elapsed        sim.Time
	BusBytesServed float64
	BusCapacityBps float64   // bus bandwidth the fractions are relative to
	BusUtilization float64   // fraction of bus capacity used
	CoreBusySec    []float64 // CPU-seconds consumed per core
}

// UtilizationReport snapshots bus and per-core usage (diagnostics for the
// CLIs and tests; the paper's CPU-utilization argument in one struct).
func (m *Machine) UtilizationReport() Utilization {
	u := Utilization{
		Elapsed:        m.Eng.Now(),
		BusBytesServed: m.Bus.Served,
		BusCapacityBps: m.Topo.Params.BusBandwidth,
	}
	if secs := u.Elapsed.Seconds(); secs > 0 {
		u.BusUtilization = m.Bus.Served / (m.Topo.Params.BusBandwidth * secs)
	}
	for _, c := range m.Cores {
		u.CoreBusySec = append(u.CoreBusySec, c.CPU.Served)
	}
	return u
}

// Sub returns the utilization of the window between snapshot prev and u:
// elapsed time, bus bytes and per-core busy seconds become deltas, and
// BusUtilization is recomputed over the window. It is how benchmarks report
// contention for exactly their measured iterations.
func (u Utilization) Sub(prev Utilization) Utilization {
	d := Utilization{
		Elapsed:        u.Elapsed - prev.Elapsed,
		BusBytesServed: u.BusBytesServed - prev.BusBytesServed,
		BusCapacityBps: u.BusCapacityBps,
	}
	for i, s := range u.CoreBusySec {
		busy := s
		if i < len(prev.CoreBusySec) {
			busy -= prev.CoreBusySec[i]
		}
		d.CoreBusySec = append(d.CoreBusySec, busy)
	}
	if secs := d.Elapsed.Seconds(); secs > 0 && d.BusCapacityBps > 0 {
		d.BusUtilization = d.BusBytesServed / (d.BusCapacityBps * secs)
	}
	return d
}

// TotalCoreBusySec sums busy seconds across every core.
func (u Utilization) TotalCoreBusySec() float64 {
	var t float64
	for _, s := range u.CoreBusySec {
		t += s
	}
	return t
}

// Traffic summarises the memory-system activity of one bulk operation.
type Traffic struct {
	Bytes          int64 // payload bytes processed
	SrcMissBytes   int64 // source bytes that missed the local L2
	DstMissBytes   int64 // destination bytes that missed the local L2
	DirtyMissBytes int64 // missed bytes serviced by a remote modified line
	BusBytes       int64 // bytes pushed over the shared bus
	CPUSeconds     float64
}

// Add accumulates other into t.
func (t *Traffic) Add(other Traffic) {
	t.Bytes += other.Bytes
	t.SrcMissBytes += other.SrcMissBytes
	t.DstMissBytes += other.DstMissBytes
	t.DirtyMissBytes += other.DirtyMissBytes
	t.BusBytes += other.BusBytes
	t.CPUSeconds += other.CPUSeconds
}

// accessBlock performs one coherent block access by a core and returns the
// bus bytes it generated, whether it hit in the local L2, and whether a
// remote modified copy had to service it. The default implementation
// consults the coherence directory; accessBlockSnoop is the brute-force
// reference it must stay equivalent to.
func (m *Machine) accessBlock(coreID topo.CoreID, block uint64, write bool) (busBytes int64, hit, dirtyRemote bool) {
	if m.snoop {
		return m.accessBlockSnoop(coreID, block, write)
	}
	p := &m.Topo.Params
	local := m.coreL2[coreID]
	return m.accessBlockDir(m.L2s[local], local, block, write,
		int64(float64(p.BlockBytes)*p.DirtyTransferFactor), p.BlockBytes)
}

// accessBlockDir is the per-block directory-coherence transition shared by
// accessBlock and classifyRange's bulk loop (which hoists the arguments
// once per range): resolve remote copies, access the local cache, keep the
// directory in sync with the fill and any eviction, and account bus bytes.
// dirtyFill is the modified-line FSB transfer cost (a stale hit with a
// remote dirty copy pays it too).
func (m *Machine) accessBlockDir(l2 *cache.Cache, local int, block uint64, write bool, dirtyFill, blockBytes int64) (busBytes int64, hit, dirtyRemote bool) {
	e := m.dir.Entry(block)
	if remote := e.Mask() &^ (1 << uint(local)); remote != 0 {
		dirtyRemote = m.serviceRemote(e, block, remote, local, write)
	}

	res := l2.Access(block, write)
	if res.Evicted {
		m.dir.Entry(res.EvictedBlock).ClearPresent(local)
	}
	if write {
		e.SetOwner(local)
	} else {
		e.SetPresent(local)
	}

	if res.Hit {
		if dirtyRemote {
			busBytes = dirtyFill
		}
		return busBytes, true, dirtyRemote
	}
	if dirtyRemote {
		busBytes = dirtyFill
	} else {
		busBytes = blockBytes
	}
	if res.EvictedDirty {
		busBytes += blockBytes
	}
	return busBytes, false, dirtyRemote
}

// accessBlockSnoop is the pre-directory coherence implementation: every
// remote cache is probed on every access. It is kept verbatim as the
// reference the directory path is differentially tested against.
func (m *Machine) accessBlockSnoop(coreID topo.CoreID, block uint64, write bool) (busBytes int64, hit, dirtyRemote bool) {
	p := &m.Topo.Params
	local := m.coreL2[coreID]
	l2 := m.L2s[local]

	if write {
		// Invalidate all other copies; a dirty remote copy must be
		// transferred first (snoop-forced writeback).
		for d, c := range m.L2s {
			if d == local {
				continue
			}
			if present, wasDirty := c.Invalidate(block); present && wasDirty {
				dirtyRemote = true
			}
		}
	} else {
		// A dirty remote copy services the read (after writeback);
		// downgrade it to clean.
		for d, c := range m.L2s {
			if d == local {
				continue
			}
			if c.ContainsDirty(block) {
				c.Downgrade(block)
				dirtyRemote = true
			}
		}
	}

	res := l2.Access(block, write)
	if res.Hit {
		if dirtyRemote {
			// Rare: stale hit with remote dirty copy; count transfer.
			busBytes += int64(float64(p.BlockBytes) * p.DirtyTransferFactor)
		}
		return busBytes, true, dirtyRemote
	}

	fill := p.BlockBytes
	if dirtyRemote {
		// Modified-line transfer over the FSB costs extra.
		fill = int64(float64(p.BlockBytes) * p.DirtyTransferFactor)
	}
	busBytes += fill
	if res.EvictedDirty {
		busBytes += p.BlockBytes
	}
	return busBytes, false, dirtyRemote
}

// classifyRange runs the coherence/cache state machine over [addr, addr+n)
// for a core, returning bus bytes, missed payload bytes, and the subset of
// missed bytes serviced by remote modified lines. It does not advance
// simulated time. The bulk loop hoists the parameter loads, the core's
// cache/domain resolution and the dirty-transfer cost out of the per-block
// path, and only does boundary math on the (at most two) partial blocks at
// the range edges; the per-block coherence transition is the same one
// accessBlock performs.
func (m *Machine) classifyRange(coreID topo.CoreID, addr uint64, n int64, write bool) (busBytes, missBytes, dirtyMissBytes int64) {
	if n <= 0 {
		return 0, 0, 0
	}
	p := &m.Topo.Params
	bs := uint64(p.BlockBytes)
	first := addr / bs
	last := (addr + uint64(n) - 1) / bs
	end := addr + uint64(n)
	if m.snoop {
		for b := first; b <= last; b++ {
			bb, hit, dirtyRemote := m.accessBlockSnoop(coreID, b, write)
			busBytes += bb
			if !hit {
				span := partialSpan(b, bs, addr, end)
				missBytes += span
				if dirtyRemote {
					dirtyMissBytes += span
				}
			}
		}
		return busBytes, missBytes, dirtyMissBytes
	}

	local := m.coreL2[coreID]
	l2 := m.L2s[local]
	dirtyFill := int64(float64(p.BlockBytes) * p.DirtyTransferFactor)
	for b := first; b <= last; b++ {
		bb, hit, dirtyRemote := m.accessBlockDir(l2, local, b, write, dirtyFill, p.BlockBytes)
		busBytes += bb
		if !hit {
			span := int64(bs)
			if b == first || b == last {
				span = partialSpan(b, bs, addr, end)
			}
			missBytes += span
			if dirtyRemote {
				dirtyMissBytes += span
			}
		}
	}
	return busBytes, missBytes, dirtyMissBytes
}

// partialSpan returns how many bytes of [addr, end) fall into block b
// (full blocks short-circuit in the callers; this handles the range edges).
func partialSpan(b, bs uint64, addr, end uint64) int64 {
	lo := b * bs
	hi := lo + bs
	if lo < addr {
		lo = addr
	}
	if hi > end {
		hi = end
	}
	return int64(hi - lo)
}

// serviceRemote resolves remote copies of block before a local access:
// writes invalidate every remote copy, reads downgrade the dirty owner.
// Returns whether a remote modified copy had to service the access.
func (m *Machine) serviceRemote(e *cache.DirEntry, block uint64, remote uint64, local int, write bool) (dirtyRemote bool) {
	if write {
		for d := 0; remote != 0; d++ {
			bit := uint64(1) << uint(d)
			if remote&bit == 0 {
				continue
			}
			remote &^= bit
			if present, wasDirty := m.L2s[d].Invalidate(block); present && wasDirty {
				dirtyRemote = true
			}
			e.ClearPresent(d)
		}
		return dirtyRemote
	}
	if owner := e.Owner(); owner >= 0 && owner != local {
		m.L2s[owner].Downgrade(block)
		e.ClearOwner()
		return true
	}
	return false
}

// ResidentBytes reports how many bytes of [addr, addr+n) are resident in
// core coreID's L2. The directory path walks only directory-known blocks
// instead of probing the cache's ways per block.
func (m *Machine) ResidentBytes(coreID topo.CoreID, addr uint64, n int64) int64 {
	if n <= 0 {
		return 0
	}
	local := m.coreL2[coreID]
	if m.snoop {
		return m.L2s[local].ResidentBytes(addr, n)
	}
	bs := uint64(m.Topo.Params.BlockBytes)
	first := addr / bs
	last := (addr + uint64(n) - 1) / bs
	end := addr + uint64(n)
	bit := uint64(1) << uint(local)
	var resident int64
	for b := first; b <= last; b++ {
		e := m.dir.Lookup(b)
		if e.Mask()&bit == 0 {
			continue
		}
		span := int64(bs)
		if b == first || b == last {
			span = partialSpan(b, bs, addr, end)
		}
		resident += span
	}
	return resident
}

// missStallPerByte converts missed bytes into extra CPU seconds such that a
// copy missing everywhere runs at CPUCopyStreamBps. Store misses stall the
// pipeline about half as much as load misses (store buffers), hence the
// weighting used by CopyRange.
func missStallPerByte(p *topo.Params) float64 {
	return (1/p.CPUCopyStreamBps - 1/p.CPUCopyCachedBps) / 1.5
}
