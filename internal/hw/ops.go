package hw

import (
	"fmt"

	"knemesis/internal/mem"
	"knemesis/internal/sim"
	"knemesis/internal/topo"
)

// CopyOpts modifies CopyRange behaviour.
type CopyOpts struct {
	// Kernel marks a kernel-mode copy, which may legally cross private
	// address spaces (KNEM, pipe internals). User-mode copies across
	// private spaces panic: they indicate a protocol modelling bug.
	Kernel bool

	// NoTime skips time accounting and only moves bytes + cache state
	// (used by tests and by warmup helpers).
	NoTime bool
}

// CopyRange copies src to dst (equal lengths) as core coreID: real payload
// bytes move, the cache/coherence state machine runs over both ranges, CPU
// time is charged under processor sharing, and fill/writeback traffic flows
// through the shared bus. Returns the traffic summary.
//
// Callers chunk large transfers themselves; protocol pipelining then emerges
// naturally from interleaved chunk copies.
func (m *Machine) CopyRange(p *sim.Proc, coreID topo.CoreID, dst, src mem.Region, opts CopyOpts) Traffic {
	if dst.Len != src.Len {
		panic(fmt.Sprintf("hw: CopyRange length mismatch %d != %d", dst.Len, src.Len))
	}
	if !opts.Kernel {
		// User space cannot touch another process's private memory: a
		// single user-mode copy may involve at most one private space
		// (its own); everything else must be shared memory. Checked
		// without materializing a region slice — CopyRange is called
		// once per chunk on the hot path.
		dsp, ssp := dst.Buf.Space(), src.Buf.Space()
		if dsp != ssp && !dsp.Shared() && !ssp.Shared() {
			panic("hw: user-mode copy across two private address spaces (needs kernel assist)")
		}
	}
	n := src.Len
	mem.CopyBytes(dst, src)
	if n == 0 {
		return Traffic{}
	}

	par := m.Params()
	srcBus, srcMiss, srcDirty := m.classifyRange(coreID, src.Addr(), n, false)
	dstBus, dstMiss, dstDirty := m.classifyRange(coreID, dst.Addr(), n, true)

	tr := Traffic{
		Bytes:          n,
		SrcMissBytes:   srcMiss,
		DstMissBytes:   dstMiss,
		DirtyMissBytes: srcDirty + dstDirty,
		BusBytes:       srcBus + dstBus,
	}
	// Plain misses stall at the streaming rate; misses serviced by remote
	// modified lines stall RemoteDirtyStallFactor times harder (stores
	// count half either way: store buffers hide part of the latency).
	stall := float64(srcMiss) + float64(dstMiss)/2 +
		(float64(srcDirty)+float64(dstDirty)/2)*(par.RemoteDirtyStallFactor-1)
	tr.CPUSeconds = float64(n)/par.CPUCopyCachedBps + stall*missStallPerByte(par)

	if !opts.NoTime {
		flow := m.Bus.Start(float64(tr.BusBytes))
		m.Cores[coreID].CPU.Consume(p, tr.CPUSeconds)
		flow.Wait(p)
	}
	return tr
}

// TouchRange walks [addr, addr+n) through core coreID's cache as reads or
// writes without moving payload (application compute touching its working
// set, or a copy side that has no modelled partner). Time accounting mirrors
// CopyRange's miss-stall model.
func (m *Machine) TouchRange(p *sim.Proc, coreID topo.CoreID, addr uint64, n int64, write bool, noTime bool) Traffic {
	if n <= 0 {
		return Traffic{}
	}
	par := m.Params()
	busBytes, missBytes, dirtyMiss := m.classifyRange(coreID, addr, n, write)
	tr := Traffic{Bytes: n, BusBytes: busBytes, DirtyMissBytes: dirtyMiss}
	if write {
		tr.DstMissBytes = missBytes
	} else {
		tr.SrcMissBytes = missBytes
	}
	stall := float64(missBytes) + float64(dirtyMiss)*(par.RemoteDirtyStallFactor-1)
	tr.CPUSeconds = float64(n)/par.CPUCopyCachedBps + stall*missStallPerByte(par)
	if !noTime {
		flow := m.Bus.Start(float64(tr.BusBytes))
		m.Cores[coreID].CPU.Consume(p, tr.CPUSeconds)
		flow.Wait(p)
	}
	return tr
}

// DMASnoopSource prepares a range for a cache-bypassing DMA read: dirty
// cached copies must be written back so the engine reads current data.
// Returns the bus bytes of the forced writebacks.
func (m *Machine) DMASnoopSource(addr uint64, n int64) int64 {
	return m.dmaWalk(addr, n, false)
}

// DMAInvalidateDest prepares a range for a cache-bypassing DMA write: all
// cached copies become stale and are invalidated (dirty ones written back
// first). Returns bus bytes.
func (m *Machine) DMAInvalidateDest(addr uint64, n int64) int64 {
	return m.dmaWalk(addr, n, true)
}

// dmaWalk prepares [addr, addr+n) for a cache-bypassing DMA access. The
// directory path touches only blocks known to be cached somewhere; the
// snoop path probes every cache for every block (reference implementation).
func (m *Machine) dmaWalk(addr uint64, n int64, invalidate bool) int64 {
	if n <= 0 {
		return 0
	}
	par := m.Params()
	bs := uint64(par.BlockBytes)
	first := addr / bs
	last := (addr + uint64(n) - 1) / bs
	var busBytes int64
	if m.snoop {
		for b := first; b <= last; b++ {
			for _, c := range m.L2s {
				if invalidate {
					if present, wasDirty := c.Invalidate(b); present && wasDirty {
						busBytes += par.BlockBytes
					}
				} else if c.ContainsDirty(b) {
					c.Downgrade(b)
					busBytes += par.BlockBytes
				}
			}
		}
		return busBytes
	}
	for b := first; b <= last; b++ {
		e := m.dir.Lookup(b)
		mask := e.Mask()
		if mask == 0 {
			continue
		}
		if invalidate {
			ent := m.dir.Entry(b)
			for d := 0; mask != 0; d++ {
				bit := uint64(1) << uint(d)
				if mask&bit == 0 {
					continue
				}
				mask &^= bit
				if present, wasDirty := m.L2s[d].Invalidate(b); present && wasDirty {
					busBytes += par.BlockBytes
				}
				ent.ClearPresent(d)
			}
		} else if owner := e.Owner(); owner >= 0 {
			m.L2s[owner].Downgrade(b)
			m.dir.Entry(b).ClearOwner()
			busBytes += par.BlockBytes
		}
	}
	return busBytes
}

// ControlTransfer models synchronization-line traffic (queue heads, ready
// flags, rendezvous handshake cells) between two cores: per line, latency is
// a shared-L2 hit when the cores share a cache, or a memory/snoop round trip
// otherwise (also consuming bus bandwidth).
func (m *Machine) ControlTransfer(p *sim.Proc, from, to topo.CoreID, lines int) {
	if lines <= 0 {
		return
	}
	par := m.Params()
	var lat sim.Time
	if m.coreL2[from] == m.coreL2[to] {
		lat = par.SharedHitLatency
	} else {
		lat = par.MemLatency
		m.Bus.Consume(p, float64(int64(lines)*par.LineBytes))
	}
	p.Sleep(lat * sim.Time(lines))
}

// LocalDelay charges fixed CPU work (syscall entry, queue bookkeeping) to a
// core under processor sharing.
func (m *Machine) LocalDelay(p *sim.Proc, coreID topo.CoreID, d sim.Time) {
	m.Cores[coreID].Busy(p, d)
}

// Compute models an application compute phase of base CPU seconds that
// streams over the given working-set regions (read-mostly: one read pass,
// with every eighth block written). Cache misses on the working set — e.g.
// after communication polluted the cache — add reload time, reproducing the
// paper's cache-pollution slowdowns.
func (m *Machine) Compute(p *sim.Proc, coreID topo.CoreID, base sim.Time, ws ...mem.Region) Traffic {
	par := m.Params()
	var tr Traffic
	for _, r := range ws {
		if r.Len <= 0 {
			continue
		}
		busBytes, missBytes, dirtyMiss := m.classifyRange(coreID, r.Addr(), r.Len, false)
		wBus, wMiss, wDirty := m.classifyRange(coreID, r.Addr(), r.Len/8, true)
		tr.BusBytes += busBytes + wBus
		tr.SrcMissBytes += missBytes
		tr.DstMissBytes += wMiss
		tr.DirtyMissBytes += dirtyMiss + wDirty
		tr.Bytes += r.Len
	}
	reload := (float64(tr.SrcMissBytes) + float64(tr.DstMissBytes)/2 +
		float64(tr.DirtyMissBytes)*(par.RemoteDirtyStallFactor-1)) * missStallPerByte(par)
	tr.CPUSeconds = base.Seconds() + reload
	flow := m.Bus.Start(float64(tr.BusBytes))
	m.Cores[coreID].CPU.Consume(p, tr.CPUSeconds)
	flow.Wait(p)
	return tr
}
