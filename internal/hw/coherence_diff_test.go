package hw

import (
	"math/rand"
	"testing"

	"knemesis/internal/cache"
	"knemesis/internal/mem"
	"knemesis/internal/topo"
	"knemesis/internal/units"
)

// The differential tests drive the directory-based coherence fast path and
// the brute-force snoop reference over identical randomized access traces
// and require bit-identical traffic and cache statistics. This is the proof
// that the directory is a pure optimization: same model, fewer probes.

// diffMachines returns two identical machines, the first on the directory
// path, the second on the snoop reference.
func diffMachines() (dir, snoop *Machine) {
	dir = New(topo.XeonE5345()) // 4 L2 domains
	snoop = New(topo.XeonE5345())
	snoop.SetSnoopCoherence(true)
	return dir, snoop
}

// traceOp is one step of a randomized coherence trace.
type traceOp struct {
	kind  int // 0 touch-read, 1 touch-write, 2 copy, 3 dma-snoop, 4 dma-inval, 5 flush
	core  topo.CoreID
	off   int64
	n     int64
	off2  int64 // copy source offset
	remap bool  // mid-trace coherence-mode flip (exercises the rebuild)
}

// randTrace builds a trace over a footprint of footprint bytes. Offsets are
// block-unaligned on purpose; lengths span one block to several hundred.
func randTrace(rng *rand.Rand, steps int, footprint int64) []traceOp {
	ops := make([]traceOp, steps)
	for i := range ops {
		n := int64(rng.Intn(256*1024) + 1)
		off := rng.Int63n(footprint - n)
		op := traceOp{
			kind: rng.Intn(6),
			core: topo.CoreID(rng.Intn(8)),
			off:  off,
			n:    n,
		}
		if op.kind == 2 {
			op.off2 = rng.Int63n(footprint - n)
		}
		// Rare flush; rare mode flip on the machine under test.
		if op.kind == 5 && rng.Intn(4) != 0 {
			op.kind = rng.Intn(2)
		}
		op.remap = rng.Intn(64) == 0
		ops[i] = op
	}
	return ops
}

// apply runs one op on a machine and returns a comparable outcome triple.
func apply(m *Machine, buf, buf2 *mem.Buffer, op traceOp) (a, b, c int64) {
	switch op.kind {
	case 0, 1:
		tr := m.TouchRange(nil, op.core, buf.Addr()+uint64(op.off), op.n, op.kind == 1, true)
		return tr.BusBytes, tr.SrcMissBytes + tr.DstMissBytes, tr.DirtyMissBytes
	case 2:
		tr := m.CopyRange(nil, op.core,
			mem.Region{Buf: buf2, Off: op.off, Len: op.n},
			mem.Region{Buf: buf, Off: op.off2, Len: op.n},
			CopyOpts{Kernel: true, NoTime: true})
		return tr.BusBytes, tr.SrcMissBytes + tr.DstMissBytes, tr.DirtyMissBytes
	case 3:
		return m.DMASnoopSource(buf.Addr()+uint64(op.off), op.n), 0, 0
	case 4:
		return m.DMAInvalidateDest(buf.Addr()+uint64(op.off), op.n), 0, 0
	case 5:
		m.FlushCaches()
		return 0, 0, 0
	}
	return 0, 0, 0
}

func statsOf(m *Machine) []cache.Stats {
	out := make([]cache.Stats, len(m.L2s))
	for i, c := range m.L2s {
		out[i] = c.Stats()
	}
	return out
}

// runDiff drives both machines through a trace, failing on the first
// divergence in per-op traffic or per-cache statistics.
func runDiff(t *testing.T, rng *rand.Rand, steps int) {
	t.Helper()
	md, ms := diffMachines()
	const footprint = 6 * units.MiB // bigger than one 4 MiB L2: evictions happen
	bufD := md.Mem.NewSharedSpace("shm").Alloc(2 * footprint)
	bufS := ms.Mem.NewSharedSpace("shm").Alloc(2 * footprint)
	dstD := bufD.Slice(footprint, footprint)
	dstS := bufS.Slice(footprint, footprint)

	for i, op := range randTrace(rng, steps, footprint) {
		if op.remap {
			// Flip the machine under test to snoop and back: the
			// directory must rebuild losslessly from cache contents.
			md.SetSnoopCoherence(true)
			md.SetSnoopCoherence(false)
		}
		da, db, dc := apply(md, bufD, dstD, op)
		sa, sb, sc := apply(ms, bufS, dstS, op)
		if da != sa || db != sb || dc != sc {
			t.Fatalf("op %d %+v: directory (%d,%d,%d) != snoop (%d,%d,%d)",
				i, op, da, db, dc, sa, sb, sc)
		}
		if res, want := md.ResidentBytes(op.core, bufD.Addr()+uint64(op.off), op.n),
			ms.L2OfCore(op.core).ResidentBytes(bufS.Addr()+uint64(op.off), op.n); res != want {
			t.Fatalf("op %d %+v: ResidentBytes %d != %d", i, op, res, want)
		}
	}
	sd, ss := statsOf(md), statsOf(ms)
	for d := range sd {
		if sd[d] != ss[d] {
			t.Fatalf("L2.%d stats diverged:\ndirectory %+v\nsnoop     %+v", d, sd[d], ss[d])
		}
	}
}

// TestCoherenceDirectoryMatchesSnoop is the main differential property test:
// many seeds, interleaved reads/writes/copies/DMA walks/flushes across all
// 4 L2 domains of the E5345 topology.
func TestCoherenceDirectoryMatchesSnoop(t *testing.T) {
	steps := 400
	seeds := 8
	if testing.Short() {
		steps, seeds = 150, 3
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			runDiff(t, rand.New(rand.NewSource(int64(seed)*7919+1)), steps)
		})
	}
}

// FuzzCoherenceEquivalence lets the fuzzer hunt for trace shapes the seeded
// property test missed.
func FuzzCoherenceEquivalence(f *testing.F) {
	f.Add(int64(1), uint(64))
	f.Add(int64(42), uint(200))
	f.Fuzz(func(t *testing.T, seed int64, steps uint) {
		runDiff(t, rand.New(rand.NewSource(seed)), int(steps%256)+1)
	})
}
