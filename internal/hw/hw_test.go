package hw

import (
	"testing"
	"testing/quick"

	"knemesis/internal/mem"
	"knemesis/internal/sim"
	"knemesis/internal/topo"
	"knemesis/internal/units"
)

func newMachine() *Machine { return New(topo.XeonE5345()) }

func TestCopyRangeMovesBytes(t *testing.T) {
	m := newMachine()
	sp := m.Mem.NewSpace("p0")
	src := sp.Alloc(64 * units.KiB)
	dst := sp.Alloc(64 * units.KiB)
	src.FillPattern(1)
	m.Eng.Spawn("copier", func(p *sim.Proc) {
		m.CopyRange(p, 0, mem.Region{Buf: dst, Off: 0, Len: dst.Len()},
			mem.Region{Buf: src, Off: 0, Len: src.Len()}, CopyOpts{})
	})
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !mem.EqualBytes(src, dst) {
		t.Fatal("payload not copied")
	}
	if m.Eng.Now() == 0 {
		t.Fatal("copy took zero simulated time")
	}
}

func TestColdCopySlowerThanWarm(t *testing.T) {
	m := newMachine()
	sp := m.Mem.NewSpace("p0")
	src := sp.Alloc(256 * units.KiB)
	dst := sp.Alloc(256 * units.KiB)
	reg := func(b *mem.Buffer) mem.Region { return mem.Region{Buf: b, Off: 0, Len: b.Len()} }

	var cold, warm sim.Time
	m.Eng.Spawn("copier", func(p *sim.Proc) {
		t0 := p.Now()
		m.CopyRange(p, 0, reg(dst), reg(src), CopyOpts{})
		cold = p.Now() - t0
		t0 = p.Now()
		m.CopyRange(p, 0, reg(dst), reg(src), CopyOpts{})
		warm = p.Now() - t0
	})
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if warm >= cold {
		t.Fatalf("warm copy (%v) not faster than cold (%v)", warm, cold)
	}
	// Warm 256KiB fits in the 4MiB L2: should approach the cached rate.
	rate := float64(256*units.KiB) / warm.Seconds()
	if rate < 0.7*m.Params().CPUCopyCachedBps {
		t.Fatalf("warm rate %.2g below cached-rate ballpark", rate)
	}
}

func TestSharedCacheHandoffFasterThanCross(t *testing.T) {
	// Producer on core 0 writes a buffer; consumer reads it from core 1
	// (shares L2) vs core 2 (different die). The shared-cache read must be
	// much faster — the effect underlying Figures 3-5.
	read := func(consumer topo.CoreID) sim.Time {
		m := newMachine()
		sp := m.Mem.NewSharedSpace("shm")
		buf := sp.Alloc(512 * units.KiB)
		scratch := sp.Alloc(512 * units.KiB)
		var dur sim.Time
		m.Eng.Spawn("producer", func(p *sim.Proc) {
			m.TouchRange(p, 0, buf.Addr(), buf.Len(), true, false)
		})
		m.Eng.Spawn("consumer", func(p *sim.Proc) {
			p.Sleep(sim.Millisecond) // after producer
			t0 := p.Now()
			m.CopyRange(p, consumer, mem.Region{Buf: scratch, Off: 0, Len: scratch.Len()},
				mem.Region{Buf: buf, Off: 0, Len: buf.Len()}, CopyOpts{})
			dur = p.Now() - t0
		})
		if err := m.Eng.Run(); err != nil {
			t.Fatal(err)
		}
		return dur
	}
	shared := read(1)
	cross := read(2)
	if float64(cross) < 1.3*float64(shared) {
		t.Fatalf("cross-die read (%v) should be well above shared-cache read (%v)", cross, shared)
	}
}

func TestDirtyTransferCostsExtraBus(t *testing.T) {
	m := newMachine()
	sp := m.Mem.NewSharedSpace("shm")
	buf := sp.Alloc(64 * units.KiB)
	var crossTr Traffic
	m.Eng.Spawn("p", func(p *sim.Proc) {
		m.TouchRange(p, 0, buf.Addr(), buf.Len(), true, false) // dirty in L2.0
		crossTr = m.TouchRange(p, 2, buf.Addr(), buf.Len(), false, false)
	})
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Reading dirty remote lines costs DirtyTransferFactor x fill bytes.
	wantMin := int64(float64(buf.Len()) * m.Params().DirtyTransferFactor)
	if crossTr.BusBytes < wantMin {
		t.Fatalf("dirty cross read bus bytes = %d, want >= %d", crossTr.BusBytes, wantMin)
	}
}

func TestUserCrossSpaceCopyPanics(t *testing.T) {
	m := newMachine()
	a := m.Mem.NewSpace("p0").Alloc(4096)
	b := m.Mem.NewSpace("p1").Alloc(4096)
	m.Eng.Spawn("p", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("user-mode cross-space copy should panic")
			}
		}()
		m.CopyRange(p, 0, mem.Region{Buf: a, Off: 0, Len: 4096},
			mem.Region{Buf: b, Off: 0, Len: 4096}, CopyOpts{})
	})
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestKernelCrossSpaceCopyAllowed(t *testing.T) {
	m := newMachine()
	a := m.Mem.NewSpace("p0").Alloc(4096)
	b := m.Mem.NewSpace("p1").Alloc(4096)
	b.FillPattern(3)
	m.Eng.Spawn("p", func(p *sim.Proc) {
		m.CopyRange(p, 0, mem.Region{Buf: a, Off: 0, Len: 4096},
			mem.Region{Buf: b, Off: 0, Len: 4096}, CopyOpts{Kernel: true})
	})
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !mem.EqualBytes(a, b) {
		t.Fatal("kernel copy did not move bytes")
	}
}

func TestDMAWalksPreserveCorrectness(t *testing.T) {
	m := newMachine()
	sp := m.Mem.NewSharedSpace("shm")
	buf := sp.Alloc(64 * units.KiB)
	m.Eng.Spawn("p", func(p *sim.Proc) {
		m.TouchRange(p, 0, buf.Addr(), buf.Len(), true, false)
		// Dirty data must be written back before a DMA read...
		wb := m.DMASnoopSource(buf.Addr(), buf.Len())
		if wb < buf.Len() {
			t.Errorf("snoop writeback bytes = %d, want >= %d", wb, buf.Len())
		}
		// ...and a second snoop finds everything clean.
		if wb2 := m.DMASnoopSource(buf.Addr(), buf.Len()); wb2 != 0 {
			t.Errorf("second snoop wrote back %d bytes, want 0", wb2)
		}
		// A DMA write invalidates cached copies entirely.
		m.DMAInvalidateDest(buf.Addr(), buf.Len())
		if res := m.L2OfCore(0).ResidentBytes(buf.Addr(), buf.Len()); res != 0 {
			t.Errorf("%d bytes still cached after DMA invalidate", res)
		}
	})
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestControlTransferLatencies(t *testing.T) {
	m := newMachine()
	var sharedT, crossT sim.Time
	m.Eng.Spawn("p", func(p *sim.Proc) {
		t0 := p.Now()
		m.ControlTransfer(p, 0, 1, 1)
		sharedT = p.Now() - t0
		t0 = p.Now()
		m.ControlTransfer(p, 0, 2, 1)
		crossT = p.Now() - t0
	})
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if sharedT != m.Params().SharedHitLatency {
		t.Fatalf("shared control latency = %v, want %v", sharedT, m.Params().SharedHitLatency)
	}
	if crossT < m.Params().MemLatency {
		t.Fatalf("cross control latency = %v, want >= %v", crossT, m.Params().MemLatency)
	}
}

func TestKernelThreadCompetesForCore(t *testing.T) {
	// Two contexts consuming CPU on one core take twice as long as one —
	// the effect that makes the non-I/OAT async KNEM mode slow (Fig. 6).
	m := newMachine()
	var aloneEnd, sharedEnd sim.Time
	m.Eng.Spawn("alone", func(p *sim.Proc) {
		m.Cores[3].Busy(p, sim.Millisecond)
		aloneEnd = p.Now()
	})
	for i := 0; i < 2; i++ {
		m.Eng.Spawn("sharer", func(p *sim.Proc) {
			m.Cores[0].Busy(p, sim.Millisecond)
			if p.Now() > sharedEnd {
				sharedEnd = p.Now()
			}
		})
	}
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if aloneEnd < sim.Millisecond || aloneEnd > sim.Millisecond+sim.Nanosecond {
		t.Fatalf("solo busy took %v, want ~1ms", aloneEnd)
	}
	if sharedEnd < 19*sim.Millisecond/10 {
		t.Fatalf("two sharers took %v, want ~2ms", sharedEnd)
	}
}

func TestComputeReloadAfterPollution(t *testing.T) {
	// A working set that fits in L2 computes fast when warm; after another
	// core's communication evicts it, the next compute phase pays reloads.
	m := newMachine()
	sp := m.Mem.NewSpace("app")
	ws := sp.Alloc(2 * units.MiB)
	pollute := m.Mem.NewSharedSpace("shm").Alloc(8 * units.MiB)
	var warm, polluted sim.Time
	m.Eng.Spawn("app", func(p *sim.Proc) {
		wsr := mem.Region{Buf: ws, Off: 0, Len: ws.Len()}
		m.Compute(p, 0, sim.Microsecond, wsr) // cold load
		t0 := p.Now()
		m.Compute(p, 0, sim.Microsecond, wsr)
		warm = p.Now() - t0
		// Pollute core 0's L2 by streaming a large buffer through it.
		m.TouchRange(p, 0, pollute.Addr(), pollute.Len(), false, false)
		t0 = p.Now()
		m.Compute(p, 0, sim.Microsecond, wsr)
		polluted = p.Now() - t0
	})
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if float64(polluted) < 1.5*float64(warm) {
		t.Fatalf("polluted compute (%v) should be much slower than warm (%v)", polluted, warm)
	}
}

// Property: CopyRange conserves traffic — bus bytes are at least the missed
// bytes and payload always arrives intact, for random sizes and cores.
func TestCopyTrafficConservationProperty(t *testing.T) {
	prop := func(sizeRaw uint32, coreRaw uint8) bool {
		m := newMachine()
		core := topo.CoreID(coreRaw % 8)
		n := int64(sizeRaw%(512*1024)) + 1
		sp := m.Mem.NewSpace("p")
		src := sp.Alloc(n)
		dst := sp.Alloc(n)
		src.FillPattern(uint64(sizeRaw))
		ok := true
		m.Eng.Spawn("p", func(p *sim.Proc) {
			tr := m.CopyRange(p, core, mem.Region{Buf: dst, Off: 0, Len: n},
				mem.Region{Buf: src, Off: 0, Len: n}, CopyOpts{})
			if tr.BusBytes < tr.SrcMissBytes || tr.Bytes != n || tr.CPUSeconds <= 0 {
				ok = false
			}
		})
		if err := m.Eng.Run(); err != nil {
			return false
		}
		return ok && mem.EqualBytes(src, dst)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestL2MissLinesReporting(t *testing.T) {
	m := newMachine()
	sp := m.Mem.NewSpace("p")
	buf := sp.Alloc(1 * units.MiB)
	m.Eng.Spawn("p", func(p *sim.Proc) {
		m.TouchRange(p, 0, buf.Addr(), buf.Len(), false, false)
	})
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	// 1 MiB of cold misses = 16384 64-byte lines regardless of block size.
	if got := m.L2MissLines(); got != (1*units.MiB)/64 {
		t.Fatalf("L2MissLines = %d, want %d", got, (1*units.MiB)/64)
	}
}
